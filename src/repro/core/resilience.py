"""Per-shard solver fallback chain: guaranteed-no-worse legalization.

The paper's flow budgets for MMSIM *imperfection* (Table 1's ~0.03%
illegal cells, repaired by the Tetris stage) but not for MMSIM *failure*:
a shard that stalls past ``max_iterations`` — or a kernel that raises —
would otherwise propagate ``converged=False`` and whatever half-iterated
positions the sweep left behind.  High-utilization regimes are exactly
where legalizers break down (Cong et al., *Locality and Utilization in
Placement Suboptimality*), so the production flow must degrade gracefully
instead of silently emitting a regressed placement.

This module re-solves *only the failing shard* down an escalation ladder:

1. ``mmsim``       — the primary solve (the paper's Eq. (16) splitting
                     with the fast Woodbury/LAPACK kernels);
2. ``mmsim_safe``  — the same iteration on the reference SuperLU kernels
                     with a fixed conservative damping (ω = 0.5): rules
                     out fast-kernel numerics and collapses the 2-cycles
                     the plain iteration can enter;
3. ``psor``        — projected SOR on the *dual* Schur-complement LCP
                     (``repro.qp.dual``): a completely different
                     iteration on a positive-diagonal system, immune to
                     the KKT splitting's failure modes;
4. ``lemke``       — exact complementary pivoting on the KKT LCP
                     (finite, no spectral conditions), for shards small
                     enough for the dense tableau;
5. ``clamp``       — the terminal fallback: cells return to their
                     pre-solve positions and the Tetris-like allocation
                     stage absorbs every remaining overlap.

Every rung's candidate is *audited* against the shard's own KKT LCP (the
natural residual must clear ``accept_tol``) before it is accepted, so a
fallback can never hand the flow a solution worse than it claims.  The
terminal clamp makes the chain total: combined with the Tetris stage's
totality (compaction + eviction) and the flow's mandatory post-flow
legality audit, ``repro legalize`` always terminates with a legal
placement whose displacement is no worse than legalizing the pre-solve
positions directly — the *no-worse contract*.

Deterministic fault injection (:attr:`ResilienceConfig.inject`) forces
chosen rungs to fail on chosen shards, so every rung and the terminal
clamp are testable in CI without hunting for pathological designs::

    ResilienceConfig(inject={"*": ["mmsim"]})          # fail every shard
    ResilienceConfig(inject={3: ["mmsim", "psor"]})    # shard 3 only

Escalations are recorded as :class:`ShardEscalation` values (surfaced on
``LegalizationResult.solver_escalations``), counted in the metrics
registry (``resilience.*``), and emitted as one ``escalation`` event per
failed shard on the session event sink.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.core.sharding import Shard, ShardedKKT, solve_sharded
from repro.core.splitting import LegalizationSplitting
from repro.lcp.lemke import LemkeOptions, lemke_solve
from repro.lcp.mmsim import MMSIMOptions, mmsim_solve
from repro.lcp.problem import LCP, LCPResult
from repro.lcp.psor import PSOROptions, psor_solve
from repro.telemetry import current_session

#: Ladder rungs, in escalation order.  ``clamp`` is terminal and cannot
#: fail (or be injected to fail).
RUNGS = ("mmsim", "mmsim_safe", "psor", "lemke", "clamp")

#: ``inject`` key selecting every shard.
ALL_SHARDS = "*"


class FaultInjected(RuntimeError):
    """Raised internally when a rung is forced to fail by injection."""


@dataclass(frozen=True)
class ResilienceConfig:
    """Controls for the per-shard solver fallback chain.

    ``accept_tol`` is the natural-residual bound a fallback rung's
    candidate must clear to be accepted; ``None`` derives it from the
    MMSIM options (``residual_tol``, else ``tol``) at solve time.

    ``inject`` is the deterministic fault-injection hook: a mapping from
    shard index (or ``"*"`` for every shard) to an iterable of rung names
    that must fail on that shard.  An injected rung is skipped without
    running and recorded with status ``"injected"`` — CI uses this to
    exercise every rung of the ladder on healthy designs.
    """

    enabled: bool = True
    accept_tol: Optional[float] = None
    #: Fixed damping for the safe-kernel MMSIM retry (collapses the
    #: 2-cycles that survive the in-solver auto rescue).
    safe_damping: float = 0.5
    #: ``max_iterations`` multiplier for the safe retry.
    safe_iteration_factor: float = 2.0
    psor_relax: float = 1.2
    psor_tol: float = 1e-10
    psor_max_iterations: int = 50000
    #: The dual LCP densifies to m × m; skip PSOR on larger shards.
    psor_max_constraints: int = 4000
    #: Lemke's dense tableau is (n+m) × 2(n+m); skip on larger shards.
    lemke_max_variables: int = 800
    lemke_max_pivots: int = 20000
    inject: Optional[Mapping[Union[int, str], Tuple[str, ...]]] = None

    def __post_init__(self) -> None:
        if self.inject is None:
            return
        for key, rungs in self.inject.items():
            if key != ALL_SHARDS and not isinstance(key, int):
                raise ValueError(
                    f"inject keys must be shard indices or '*', got {key!r}"
                )
            for rung in rungs:
                if rung == "clamp":
                    raise ValueError(
                        "the terminal 'clamp' rung cannot be injected to fail"
                    )
                if rung not in RUNGS:
                    raise ValueError(
                        f"unknown rung {rung!r}; valid rungs: {RUNGS[:-1]}"
                    )

    def should_fail(self, shard_index: int, rung: str) -> bool:
        """Whether injection forces *rung* to fail on shard *shard_index*."""
        if self.inject is None:
            return False
        for key in (shard_index, ALL_SHARDS):
            if rung in self.inject.get(key, ()):
                return True
        return False


@dataclass
class RungAttempt:
    """One rung's outcome while solving a shard."""

    rung: str
    #: ``"won"`` | ``"failed"`` | ``"rejected"`` | ``"injected"`` |
    #: ``"skipped"`` | ``"raised"``
    status: str
    iterations: int = 0
    residual: float = math.nan
    detail: str = ""


@dataclass
class ShardEscalation:
    """The full ladder walk of one shard that failed its primary solve."""

    shard_index: int
    num_variables: int
    num_constraints: int
    attempts: List[RungAttempt] = field(default_factory=list)

    @property
    def winner(self) -> str:
        """The rung whose solution was accepted (``clamp`` at worst)."""
        for attempt in self.attempts:
            if attempt.status == "won":
                return attempt.rung
        return "clamp"

    @property
    def solved(self) -> bool:
        """True when some rung produced a certified LCP solution (the
        terminal clamp does not — it defers to the Tetris stage)."""
        return self.winner != "clamp"

    def summary(self) -> str:
        trail = " -> ".join(
            f"{a.rung}[{a.status}]" for a in self.attempts
        )
        return f"shard {self.shard_index}: {trail}"


# ----------------------------------------------------------------------
# The ladder
# ----------------------------------------------------------------------
def solve_shard_resilient(
    lcp: LCP,
    splitting: LegalizationSplitting,
    options: Optional[MMSIMOptions] = None,
    s0: Optional[np.ndarray] = None,
    config: Optional[ResilienceConfig] = None,
    shard_index: int = 0,
    z0: Optional[np.ndarray] = None,
    primary_result: Optional[LCPResult] = None,
) -> Tuple[LCPResult, Optional[ShardEscalation]]:
    """Solve one shard's KKT LCP down the fallback ladder.

    ``z0`` warm-starts the MMSIM rungs from a previous solution (see
    :func:`repro.lcp.mmsim.warm_start_from_z`); the non-MMSIM rungs
    ignore it.  ``primary_result`` substitutes an already-computed
    primary MMSIM result (the batched group engine's output, which is
    bit-identical to the per-shard solve) for rung 1 — a failed one
    walks the ladder exactly as if the per-shard solve had failed, and
    fault injection on ``"mmsim"`` still discards it.  Returns
    ``(result, escalation)``; *escalation* is None when the primary
    MMSIM succeeded (the overwhelmingly common case — the result is then
    bit-identical to a plain :func:`mmsim_solve`).
    """
    opts = options or MMSIMOptions()
    cfg = config or ResilienceConfig()
    n = splitting.n
    m = splitting.m
    accept_tol = cfg.accept_tol
    if accept_tol is None:
        accept_tol = opts.residual_tol if opts.residual_tol is not None else opts.tol

    escalation = ShardEscalation(
        shard_index=shard_index, num_variables=n, num_constraints=m
    )
    attempts = escalation.attempts

    # Rung 1: the primary MMSIM, exactly as the non-resilient path runs it.
    try:
        if cfg.should_fail(shard_index, "mmsim"):
            raise FaultInjected("injected: mmsim")
        result = (
            primary_result
            if primary_result is not None
            else mmsim_solve(lcp, splitting, opts, s0=s0, z0=z0)
        )
        if result.converged:
            return result, None
        attempts.append(
            RungAttempt(
                "mmsim",
                "failed",
                iterations=result.iterations,
                residual=result.residual,
                detail=result.message,
            )
        )
    except FaultInjected as exc:
        attempts.append(RungAttempt("mmsim", "injected", detail=str(exc)))
    except Exception as exc:  # noqa: BLE001 - any kernel failure escalates
        attempts.append(RungAttempt("mmsim", "raised", detail=repr(exc)))

    def try_rung(rung: str, runner) -> Optional[LCPResult]:
        """Run one fallback rung; audit, record, and return a win or None.

        The candidate is accepted only when the rung converged *and* its
        assembled z clears ``accept_tol`` on this shard's own KKT LCP —
        the audit that makes the no-worse contract hold.
        """
        try:
            if cfg.should_fail(shard_index, rung):
                raise FaultInjected(f"injected: {rung}")
            result = runner()
        except FaultInjected as exc:
            attempts.append(RungAttempt(rung, "injected", detail=str(exc)))
            return None
        except Exception as exc:  # noqa: BLE001 - any rung failure escalates
            attempts.append(RungAttempt(rung, "raised", detail=repr(exc)))
            return None
        residual = lcp.natural_residual(result.z)
        if result.converged and residual <= accept_tol:
            attempts.append(
                RungAttempt(
                    rung, "won", iterations=result.iterations, residual=residual
                )
            )
            return result
        attempts.append(
            RungAttempt(
                rung,
                "rejected" if result.converged else "failed",
                iterations=result.iterations,
                residual=residual,
                detail=result.message,
            )
        )
        return None

    # Rung 2: safe kernels + fixed conservative damping.
    def run_safe() -> LCPResult:
        safe_opts = replace(
            opts,
            damping=cfg.safe_damping,
            auto_damping=False,
            max_iterations=max(
                1, int(opts.max_iterations * cfg.safe_iteration_factor)
            ),
            record_history=False,
        )
        return mmsim_solve(
            lcp, splitting.rebuilt(fast_kernels=False), safe_opts, s0=s0, z0=z0
        )

    result = try_rung("mmsim_safe", run_safe)
    if result is not None:
        return _won(result, escalation), escalation

    # Rung 3: PSOR on the dual Schur-complement LCP.  A different
    # algorithm on a different (positive-diagonal) system; the recovered
    # primal is audited against the original KKT LCP.
    if m > cfg.psor_max_constraints:
        attempts.append(
            RungAttempt(
                "psor",
                "skipped",
                detail=f"m={m} > psor_max_constraints={cfg.psor_max_constraints}",
            )
        )
    else:
        result = try_rung("psor", lambda: _psor_rung(lcp, splitting, n, cfg))
        if result is not None:
            return _won(result, escalation), escalation

    # Rung 4: exact Lemke pivoting (small shards only: dense tableau).
    if n + m > cfg.lemke_max_variables:
        attempts.append(
            RungAttempt(
                "lemke",
                "skipped",
                detail=(
                    f"n+m={n + m} > lemke_max_variables="
                    f"{cfg.lemke_max_variables}"
                ),
            )
        )
    else:
        result = try_rung(
            "lemke",
            lambda: lemke_solve(
                lcp, LemkeOptions(max_pivots=cfg.lemke_max_pivots)
            ),
        )
        if result is not None:
            return _won(result, escalation), escalation

    # Terminal rung: clamp to the pre-solve positions.  z = [x_gp; 0] is
    # the iteration's own starting point, so downstream stages see the
    # cells exactly where the solve found them — the Tetris allocation
    # then owns every remaining overlap.  Never fails.
    z = np.zeros(n + m)
    z[:n] = np.maximum(-lcp.q[:n], 0.0)
    residual = lcp.natural_residual(z)
    attempts.append(RungAttempt("clamp", "won", residual=residual))
    result = LCPResult(
        z=z,
        converged=False,
        iterations=0,
        residual=residual,
        solver="clamp",
        message="clamped to pre-solve positions (" + escalation.summary() + ")",
    )
    return result, escalation


def _won(result: LCPResult, escalation: ShardEscalation) -> LCPResult:
    """Stamp a fallback win's provenance onto the result message."""
    message = f"fallback '{escalation.winner}' solved the shard"
    if result.message:
        message += f" ({result.message})"
    return replace(result, message=message)


def _psor_rung(
    lcp: LCP,
    splitting: LegalizationSplitting,
    n: int,
    cfg: ResilienceConfig,
) -> LCPResult:
    """PSOR on the dual LCP of the shard's QP, mapped back to KKT form.

    The shard's LCP is the KKT system of ``min ½yᵀHy + pᵀy  s.t.
    By >= b, y >= 0`` with ``q = [p; −b]``; eliminating the primal
    variables gives the SPD dual LCP in the multipliers r (see
    :mod:`repro.qp.dual`).  The dual drops the ``y >= 0`` bound, so the
    recovered primal is clamped and the caller audits the assembled
    ``z = [y; r]`` against the original KKT LCP before accepting it.
    """
    from repro.qp.dual import make_dual_lcp
    from repro.qp.problem import QPProblem

    p = np.asarray(lcp.q[:n], dtype=float)
    b = -np.asarray(lcp.q[n:], dtype=float)
    qp = QPProblem(H=splitting.H, p=p, B=splitting.B, b=b)
    dual_lcp, recover = make_dual_lcp(qp)
    dual = psor_solve(
        dual_lcp,
        PSOROptions(
            relax=cfg.psor_relax,
            tol=cfg.psor_tol,
            max_iterations=cfg.psor_max_iterations,
        ),
    )
    y = np.maximum(recover(dual.z), 0.0)
    z = np.concatenate([y, dual.z])
    return LCPResult(
        z=z,
        converged=dual.converged,
        iterations=dual.iterations,
        residual=lcp.natural_residual(z),
        solver="psor",
        message=dual.message,
    )


# ----------------------------------------------------------------------
# Sharded / monolithic entry points
# ----------------------------------------------------------------------
def solve_sharded_resilient(
    sharded: ShardedKKT,
    options: Optional[MMSIMOptions] = None,
    s0: Optional[np.ndarray] = None,
    max_workers: Optional[int] = None,
    config: Optional[ResilienceConfig] = None,
    z0: Optional[np.ndarray] = None,
    parallel: Optional[bool] = None,
    batch=None,
) -> Tuple[LCPResult, List[ShardEscalation]]:
    """:func:`repro.core.sharding.solve_sharded` with the fallback ladder.

    Shards whose primary MMSIM converges are untouched (bit-identical to
    the plain sharded solve); failing shards walk the ladder.  With
    ``batch`` on, a converged batched result passes rung 1 directly
    (without ever materializing the shard's own factorization), while a
    shard that failed inside its batch — or is fault-injected — is
    peeled out and walks the ladder on its own prefactorized splitting.
    Returns the aggregate result plus one :class:`ShardEscalation` per
    shard that escalated, in shard order.
    """
    cfg = config or ResilienceConfig()
    escalations: List[ShardEscalation] = []

    def ladder(
        shard: Shard,
        opts: MMSIMOptions,
        s0_s,
        z0_s,
        primary: Optional[LCPResult] = None,
    ) -> LCPResult:
        if (
            primary is not None
            and primary.converged
            and not cfg.should_fail(shard.index, "mmsim")
        ):
            # Rung 1 succeeded inside the batch; nothing to escalate and
            # no reason to build the shard's own LCP or splitting.
            return primary
        result, escalation = solve_shard_resilient(
            shard.lcp,
            shard.splitting,
            opts,
            s0=s0_s,
            config=cfg,
            shard_index=shard.index,
            z0=z0_s,
            primary_result=primary,
        )
        if escalation is not None:
            escalations.append(escalation)  # list.append is thread-safe
        return result

    result = solve_sharded(
        sharded,
        options,
        s0=s0,
        max_workers=max_workers,
        shard_solver=ladder,
        z0=z0,
        parallel=parallel,
        batch=batch,
    )
    escalations.sort(key=lambda e: e.shard_index)
    _record_escalations(escalations)
    if escalations:
        solved = sum(1 for e in escalations if e.solved)
        note = (
            f"{len(escalations)} shard(s) escalated past mmsim "
            f"({solved} solved by fallbacks)"
        )
        message = f"{result.message}; {note}" if result.message else note
        result = replace(result, message=message)
    return result, escalations


def solve_monolithic_resilient(
    lcp: LCP,
    splitting: LegalizationSplitting,
    options: Optional[MMSIMOptions] = None,
    s0: Optional[np.ndarray] = None,
    config: Optional[ResilienceConfig] = None,
    z0: Optional[np.ndarray] = None,
) -> Tuple[LCPResult, List[ShardEscalation]]:
    """The fallback ladder for the unsharded (single-LCP) solve path.

    The monolithic KKT LCP is treated as shard 0; ``inject`` keys of 0
    or ``"*"`` apply to it.
    """
    result, escalation = solve_shard_resilient(
        lcp, splitting, options, s0=s0, config=config, shard_index=0, z0=z0
    )
    escalations = [escalation] if escalation is not None else []
    _record_escalations(escalations)
    return result, escalations


def _record_escalations(escalations: List[ShardEscalation]) -> None:
    """Emit telemetry for completed ladder walks (one event per shard).

    Called once after all shards finish — the event sink is not meant for
    concurrent emitters, so nothing is emitted from worker threads.
    """
    if not escalations:
        return
    tel = current_session()
    if not tel.enabled:
        return
    metrics = tel.metrics
    sink = tel.solver_events
    for esc in escalations:
        metrics.counter("resilience.escalated_shards").inc()
        metrics.counter(f"resilience.win.{esc.winner}").inc()
        for attempt in esc.attempts:
            metrics.counter(
                f"resilience.attempts.{attempt.rung}.{attempt.status}"
            ).inc()
        if sink is not None:
            sink.emit(
                "resilience",
                "escalation",
                shard=esc.shard_index,
                variables=esc.num_variables,
                constraints=esc.num_constraints,
                winner=esc.winner,
                solved=esc.solved,
                rungs=[f"{a.rung}:{a.status}" for a in esc.attempts],
            )
