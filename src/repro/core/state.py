"""Persisted solver state for warm-started (ECO) re-legalization.

A :class:`LegalizationResult` carries the KKT LCP solution ``z = [y; r]``
that the MMSIM stage produced; feeding it back via
``legalize(design, warm_start_z=...)`` (or the CLI's ``--state PATH``) makes
an incremental re-run of the *same* design converge in about one sweep.

The failure mode this module exists to close: a persisted ``z`` silently
applied to a *different* design.  If the dimensions happen to differ the
sweep crashes midway; if they coincide (easy — add one cell, drop another)
the solver starts from a point assembled for another problem and the warm
start silently warps the iterate path.  A :class:`SolverState` therefore
pairs the vector with a **design fingerprint**: a SHA-256 over the design's
structure (core geometry, rail parity, and every cell's master/fixity, in
order).  GP *positions* are deliberately excluded — nudged positions are
exactly the ECO use case a warm start exists for — but anything that could
change the constraint layout or variable ordering is covered.

``load_solver_state`` also reads the legacy bare ``.npy`` format (a raw
array, no fingerprint); such states are only dimension-checked.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.netlist.design import Design

#: Bump when the persisted layout changes incompatibly.
STATE_VERSION = 1

#: Key of the JSON metadata entry inside the ``.npz`` archive.
_META_KEY = "meta"


class StaleWarmStart(UserWarning):
    """A warm-start state was rejected (dimension or fingerprint mismatch)."""


def design_fingerprint(design: Design) -> str:
    """SHA-256 over the structure that determines the KKT system layout.

    Covers the core geometry (rows, sites, pitches, origin, rail parity)
    and the ordered cell list (name, master width/height/rail, fixity).
    Excludes GP and working positions: position-only edits keep the
    variable/constraint dimensions compatible and are the intended
    warm-start scenario.  Excludes nets: they never enter the QP.
    """
    core = design.core
    h = hashlib.sha256()
    h.update(
        repr(
            (
                core.xl,
                core.yl,
                core.num_rows,
                core.row_height,
                core.num_sites,
                core.site_width,
                core.rails.bottom_rail_of_row_0.value,
            )
        ).encode()
    )
    for cell in design.cells:
        rail = cell.master.bottom_rail
        h.update(
            (
                f"{cell.name}|{cell.master.width!r}|{cell.master.height_rows}"
                f"|{rail.value if rail is not None else '-'}|{int(cell.fixed)}\n"
            ).encode()
        )
    # Fences shape the constraint layout (per-group anchors and shard
    # batching), so a fence edit must invalidate warm-start state.
    for fence in design.fences:
        h.update(
            repr(
                (fence.name, fence.rects, tuple(sorted(fence.members)))
            ).encode()
        )
    return h.hexdigest()


@dataclass
class SolverState:
    """A persisted KKT solution plus the identity of the design it solves."""

    z: np.ndarray
    fingerprint: Optional[str] = None
    num_variables: Optional[int] = None
    num_constraints: Optional[int] = None
    design_name: Optional[str] = None
    version: int = STATE_VERSION
    #: Coupling-graph component label per KKT variable from the run that
    #: produced ``z`` (sharded runs only; None otherwise).  A later run's
    #: setup-reuse layer diffs its fresh labels against these to find
    #: components whose membership changed (see repro.core.setup_cache).
    component_labels: Optional[np.ndarray] = None

    @classmethod
    def from_result(cls, design: Design, result) -> "SolverState":
        """Capture a :class:`LegalizationResult`'s solution for *design*."""
        if result.kkt_solution is None:
            raise ValueError("result carries no kkt_solution to persist")
        labels = getattr(result, "component_labels", None)
        return cls(
            z=np.asarray(result.kkt_solution, dtype=float),
            fingerprint=design_fingerprint(design),
            num_variables=result.num_variables,
            num_constraints=result.num_constraints,
            design_name=design.name,
            component_labels=(
                None if labels is None else np.asarray(labels)
            ),
        )

    def matches(self, design: Design, expected_dim: Optional[int] = None) -> Optional[str]:
        """None when this state may warm-start *design*, else the reason not.

        ``expected_dim`` is the current run's ``n + m``; dimension mismatch
        is always a rejection.  A fingerprint mismatch rejects even when
        the dimensions coincide — that is the silent-warp case.
        """
        if expected_dim is not None and self.z.shape != (expected_dim,):
            return (
                f"state dimension {self.z.shape} does not match the design's "
                f"KKT system ({expected_dim},)"
            )
        if self.fingerprint is not None:
            current = design_fingerprint(design)
            if current != self.fingerprint:
                saved = f" (saved from {self.design_name!r})" if self.design_name else ""
                return (
                    f"design fingerprint mismatch{saved}: the persisted state "
                    "belongs to a structurally different design"
                )
        return None


def save_solver_state(path: str, state: SolverState) -> None:
    """Write *state* to ``path`` as an ``.npz`` archive (exact path, no
    extension appended — the CLI round-trips bare filenames).

    The write is **atomic**: the archive goes to a temporary file in the
    same directory, is fsynced, and then renamed over ``path`` with
    :func:`os.replace`.  A run interrupted mid-write (SIGKILL, disk full,
    power loss) therefore leaves either the previous state or the new
    one — never a truncated archive that would crash the next
    warm-started run's load.
    """
    meta = json.dumps(
        {
            "version": state.version,
            "fingerprint": state.fingerprint,
            "num_variables": state.num_variables,
            "num_constraints": state.num_constraints,
            "design_name": state.design_name,
        }
    )
    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    arrays = {"z": state.z, _META_KEY: np.asarray(meta)}
    if state.component_labels is not None:
        arrays["component_labels"] = state.component_labels
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez(fh, **arrays)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def load_solver_state(path: str) -> SolverState:
    """Read a solver state; accepts the legacy bare-``.npy`` format too."""
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    loaded = np.load(path, allow_pickle=False)
    if isinstance(loaded, np.ndarray):
        # Legacy format: a raw z vector with no identity attached.
        return SolverState(z=np.asarray(loaded, dtype=float))
    try:
        z = np.asarray(loaded["z"], dtype=float)
        meta = json.loads(str(loaded[_META_KEY]))
        labels = (
            np.asarray(loaded["component_labels"])
            if "component_labels" in loaded.files
            else None
        )
    finally:
        loaded.close()
    return SolverState(
        z=z,
        fingerprint=meta.get("fingerprint"),
        num_variables=meta.get("num_variables"),
        num_constraints=meta.get("num_constraints"),
        design_name=meta.get("design_name"),
        version=int(meta.get("version", STATE_VERSION)),
        component_labels=labels,
    )
