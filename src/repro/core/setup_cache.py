"""Incremental setup reuse for ECO re-legalization (the factorization cache).

With the batched MMSIM the sweeps themselves are cheap; what now dominates
an ECO re-run is *setup*: slicing the per-shard blocks out of the global
matrices, the Woodbury/``pttrf`` factorizations of every splitting, and
assembling the stacked KKT matrices.  All of that depends only on the
matrices ``(H, B, E)``, the scalars ``(λ, β*, θ*)``, and the kernel mode —
not on the right-hand sides ``(p, b)`` that a position-only ECO perturbs.

This module makes that setup incremental:

* :class:`SetupCache` memoizes one :class:`SetupEntry` (a prefactorized
  :class:`~repro.core.splitting.LegalizationSplitting` plus the assembled
  KKT matrix ``A``) per *index key* — a digest of the exact global index
  sets ``(variables, b_rows, e_rows)`` a shard or stacked group was sliced
  from.  ``q = [p; −b]`` is always rebuilt fresh, so a cache hit is
  bit-identical to a cold build by construction: same matrices, same
  per-row entry order, same factorizations — hence identical sweeps.

* :class:`ReuseCache` is the caller-facing handle threaded through
  ``legalize(..., reuse=)``.  It decides which entries may be *trusted*
  this run by diffing the new global blocks against the previous run's:

  - all three matrices bitwise identical (the unchanged-design re-run)
    → every entry is trusted wholesale, no per-shard slicing at all;
  - otherwise a **dirty-component diff**: rows of H/B/E whose stored
    content changed mark their variables dirty, coupling components whose
    membership changed (against the previous run's labels) are dirty, and
    only shards touching dirty variables rebuild.  An entry that exists
    under a matching index key but is not trusted is *stale* — it is
    dropped and rebuilt, never served.

Cache taxonomy (``setup.cache_{hit,miss,stale}`` counters, one increment
per splitting built or reused — a stacked group counts once):

* **hit** — trusted entry found: the splitting and A are reused.
* **miss** — no entry under the key (first run, evicted, or a shard whose
  index sets changed): built and inserted.
* **stale** — an entry exists but the trust diff says its content
  changed: rebuilt and replaced.

A :class:`ReuseCache` must not be shared by *concurrent* runs — the
cached splittings carry mutable sweep buffers.  The service checks a
cache out of the :class:`~repro.service.store.WarmStateStore` for the
duration of a request and checks it back in afterwards, so concurrent
requests under one key simply miss.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np
import scipy.sparse as sp

from repro.telemetry import current_session

#: Reserved index key of the monolithic (unsharded) splitting.
MONOLITHIC_KEY = b"monolithic"


def index_key(
    variables: np.ndarray, b_rows: np.ndarray, e_rows: np.ndarray
) -> bytes:
    """Digest of the exact global index sets one setup was sliced from."""
    h = hashlib.blake2b(digest_size=16)
    for arr in (variables, b_rows, e_rows):
        a = np.ascontiguousarray(arr, dtype=np.int64)
        h.update(np.int64(a.size).tobytes())
        h.update(a.tobytes())
    return h.digest()


def combine_keys(keys: List[bytes]) -> bytes:
    """One key for a stacked group: the digest of its members' keys in
    stacking order (order matters — it is the memory layout)."""
    h = hashlib.blake2b(digest_size=16)
    for key in keys:
        h.update(key)
    return h.digest()


@dataclass
class SetupEntry:
    """One memoized setup: the prefactorized splitting and (optionally)
    the assembled KKT matrix A.  ``q`` is never cached."""

    splitting: Any = None
    A: Optional[sp.csr_matrix] = None


class SetupCache:
    """Bounded, thread-safe ``index key → SetupEntry`` store.

    ``stats`` mirrors the telemetry counters for callers running outside
    a telemetry session (tests, offline scripts).
    """

    def __init__(self, max_entries: int = 8192) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[bytes, SetupEntry]" = OrderedDict()
        self.stats: Dict[str, int] = {"hit": 0, "miss": 0, "stale": 0}

    def get(self, key: bytes) -> Optional[SetupEntry]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
            return entry

    def store(
        self,
        key: bytes,
        splitting: Any = None,
        A: Optional[sp.csr_matrix] = None,
    ) -> SetupEntry:
        """Insert (or replace) the entry under *key*."""
        entry = SetupEntry(splitting=splitting, A=A)
        with self._lock:
            self._entries.pop(key, None)
            self._entries[key] = entry
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        return entry

    def record(self, kind: str) -> None:
        """Count one hit/miss/stale, locally and in telemetry."""
        with self._lock:
            self.stats[kind] += 1
        tel = current_session()
        if tel.enabled:
            tel.metrics.counter(f"setup.cache_{kind}").inc()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


# ----------------------------------------------------------------------
# Global-block diffing
# ----------------------------------------------------------------------
def _csr_identical(new: sp.csr_matrix, old: sp.csr_matrix) -> bool:
    """Bitwise equality of two CSR matrices' stored content."""
    return (
        new.shape == old.shape
        and np.array_equal(new.indptr, old.indptr)
        and np.array_equal(new.indices, old.indices)
        and np.array_equal(_data_bits(new), _data_bits(old))
    )


def _data_bits(M: sp.csr_matrix) -> np.ndarray:
    """The stored values as raw int64 bit patterns (exact comparison)."""
    data = np.ascontiguousarray(M.data, dtype=np.float64)
    return data.view(np.int64)


def _triplets(M: sp.csr_matrix) -> np.ndarray:
    """``(nnz, 3)`` int64 array of (row, col, value-bits) triplets."""
    coo = M.tocoo()
    out = np.empty((coo.nnz, 3), dtype=np.int64)
    out[:, 0] = coo.row
    out[:, 1] = coo.col
    out[:, 2] = np.ascontiguousarray(coo.data, dtype=np.float64).view(
        np.int64
    )
    return out


def changed_rows(
    new: sp.csr_matrix, old: sp.csr_matrix
) -> Optional[np.ndarray]:
    """Row indices whose stored content differs between *new* and *old*.

    Works across differing row counts (a vanished or added row is a
    changed row); returns None when the matrices are incomparable
    (different column counts — every row must be considered dirty).
    Comparison is bitwise on the stored values: an entry present in
    exactly one of the two multisets of (row, col, bits) triplets marks
    its row changed.
    """
    if new.shape[1] != old.shape[1]:
        return None
    if _csr_identical(new, old):
        return np.empty(0, dtype=np.intp)
    both = np.concatenate([_triplets(new), _triplets(old)])
    if both.size == 0:
        # Same column count, no stored entries anywhere, but not
        # identical — only the row counts differ; no rows carry content.
        return np.empty(0, dtype=np.intp)
    uniq, counts = np.unique(both, axis=0, return_counts=True)
    odd = uniq[counts % 2 == 1]
    return np.unique(odd[:, 0]).astype(np.intp)


def _columns_of_rows(M: sp.csr_matrix, rows: np.ndarray) -> np.ndarray:
    """All stored column indices of the given rows (rows beyond the
    matrix are ignored — they exist only in the other generation)."""
    rows = rows[rows < M.shape[0]]
    if rows.size == 0:
        return np.empty(0, dtype=np.intp)
    cols = [
        M.indices[M.indptr[r]: M.indptr[r + 1]] for r in rows.tolist()
    ]
    if not cols:
        return np.empty(0, dtype=np.intp)
    return np.unique(np.concatenate(cols)).astype(np.intp)


def membership_dirty_components(
    prev_labels: Optional[np.ndarray],
    labels: np.ndarray,
    num_components: int,
) -> np.ndarray:
    """Boolean mask over *new* components whose membership changed.

    A new component is clean iff its variables all carried one previous
    label, and that previous component contained exactly those variables
    (no splits, merges, or migrations).  Vectorized via label-pair
    counting — no Python loop over components.
    """
    dirty = np.ones(num_components, dtype=bool)
    if prev_labels is None or len(prev_labels) != len(labels):
        return dirty
    if np.array_equal(prev_labels, labels):
        dirty[:] = False
        return dirty
    prev = np.asarray(prev_labels, dtype=np.int64)
    new = np.asarray(labels, dtype=np.int64)
    stride = int(prev.max()) + 1 if prev.size else 1
    pair = new * stride + prev
    uniq, counts = np.unique(pair, return_counts=True)
    new_of_pair = (uniq // stride).astype(np.intp)
    prev_of_pair = (uniq % stride).astype(np.intp)
    dirty[:] = False
    # More than one previous label inside a new component.
    dirty |= np.bincount(new_of_pair, minlength=num_components) > 1
    # Single previous label, but the previous component was larger (a
    # split/migration): the pair count must equal the old component size.
    prev_sizes = np.bincount(prev, minlength=stride)
    shrunk = counts != prev_sizes[prev_of_pair]
    dirty[new_of_pair[shrunk]] = True
    return dirty


@dataclass
class TrustInfo:
    """Outcome of one run's trust diff against the previous generation."""

    #: Every cached entry may be reused (globals bitwise identical).
    all_trusted: bool = False
    #: Per-variable trust mask (None when all_trusted decides alone).
    var_mask: Optional[np.ndarray] = None
    dirty_components: int = 0
    clean_components: int = 0

    def shard_trusted(self, variables: np.ndarray) -> bool:
        if self.all_trusted:
            return True
        if self.var_mask is None:
            return False
        return bool(self.var_mask[variables].all())


@dataclass
class _Globals:
    """One run's setup-determining inputs, kept for the next run's diff."""

    H: sp.csr_matrix
    B: sp.csr_matrix
    E: sp.csr_matrix
    scalar_key: tuple
    labels: Optional[np.ndarray]


@dataclass
class ReuseCache:
    """The incremental-setup handle for ``legalize(..., reuse=)``.

    Pass the same instance to consecutive runs of the same (possibly
    perturbed) design; it carries the previous run's global blocks and
    component labels for the dirty diff, plus the :class:`SetupCache` of
    memoized splittings.  Not safe for concurrent runs (see module doc).
    """

    max_entries: int = 8192
    setups: SetupCache = None  # type: ignore[assignment]
    prev: Optional[_Globals] = None
    #: Trust info of the most recent :meth:`begin_run` (diagnostics).
    last_trust: Optional[TrustInfo] = None
    runs: int = 0

    def __post_init__(self) -> None:
        if self.setups is None:
            self.setups = SetupCache(max_entries=self.max_entries)

    # ------------------------------------------------------------------
    def begin_run(
        self,
        H: sp.csr_matrix,
        B: sp.csr_matrix,
        E: sp.csr_matrix,
        scalar_key: tuple,
        labels: Optional[np.ndarray] = None,
        num_components: int = 0,
    ) -> TrustInfo:
        """Diff this run's setup inputs against the previous run's and
        decide which cached entries may be trusted; then adopt this run's
        inputs as the new baseline.

        ``labels`` is the coupling-component labelling (None on the
        monolithic path, where trust is all-or-nothing).
        """
        prev = self.prev
        self.prev = _Globals(
            H=H, B=B, E=E, scalar_key=scalar_key, labels=labels
        )
        self.runs += 1
        trust = self._trust(prev, H, B, E, scalar_key, labels, num_components)
        self.last_trust = trust
        tel = current_session()
        if tel.enabled and labels is not None:
            tel.metrics.gauge("setup.dirty_components").set(
                trust.dirty_components
            )
            tel.metrics.gauge("setup.clean_components").set(
                trust.clean_components
            )
        return trust

    def _trust(
        self, prev, H, B, E, scalar_key, labels, num_components
    ) -> TrustInfo:
        if prev is None or prev.scalar_key != scalar_key:
            return TrustInfo(dirty_components=num_components)
        if H.shape[0] != prev.H.shape[0]:
            return TrustInfo(dirty_components=num_components)
        identical = (
            _csr_identical(H, prev.H)
            and _csr_identical(B, prev.B)
            and _csr_identical(E, prev.E)
        )
        labels_equal = (
            labels is None
            and prev.labels is None
        ) or (
            labels is not None
            and prev.labels is not None
            and np.array_equal(labels, prev.labels)
        )
        if identical and labels_equal:
            return TrustInfo(
                all_trusted=True, clean_components=num_components
            )
        if labels is None:
            # Monolithic: no finer granularity than the whole system.
            return TrustInfo()
        n = H.shape[0]
        dirty_vars = np.zeros(n, dtype=bool)
        h_rows = changed_rows(H, prev.H)
        if h_rows is None:
            return TrustInfo(dirty_components=num_components)
        dirty_vars[h_rows] = True
        for new_m, old_m in ((B, prev.B), (E, prev.E)):
            rows = changed_rows(new_m, old_m)
            if rows is None:
                return TrustInfo(dirty_components=num_components)
            if rows.size:
                dirty_vars[_columns_of_rows(new_m, rows)] = True
                dirty_vars[_columns_of_rows(old_m, rows)] = True
        dirty_comp = membership_dirty_components(
            prev.labels, labels, num_components
        )
        dirty_comp |= (
            np.bincount(
                labels[dirty_vars].astype(np.intp),
                minlength=num_components,
            )
            > 0
        )
        mask = ~dirty_comp[labels]
        n_dirty = int(dirty_comp.sum())
        return TrustInfo(
            var_mask=mask,
            dirty_components=n_dirty,
            clean_components=num_components - n_dirty,
        )

    # ------------------------------------------------------------------
    @property
    def stats(self) -> Dict[str, int]:
        return dict(self.setups.stats)

    @property
    def nbytes(self) -> int:
        """Rough resident-size estimate (for store accounting only)."""
        total = 0
        prev = self.prev
        if prev is not None:
            for M in (prev.H, prev.B, prev.E):
                total += int(M.data.nbytes + M.indices.nbytes + M.indptr.nbytes)
            if prev.labels is not None:
                total += int(prev.labels.nbytes)
        with self.setups._lock:
            for entry in self.setups._entries.values():
                if entry.A is not None:
                    total += int(
                        entry.A.data.nbytes
                        + entry.A.indices.nbytes
                        + entry.A.indptr.nbytes
                    )
                if entry.splitting is not None:
                    # Splittings hold a handful of same-order sparse
                    # blocks and dense bands; approximate with A's size
                    # when available, else a fixed floor.
                    total += (
                        int(
                            entry.A.data.nbytes
                            + entry.A.indices.nbytes
                            + entry.A.indptr.nbytes
                        )
                        if entry.A is not None
                        else 4096
                    )
        return total


def scalar_setup_key(
    lam: float, params, fast_kernels: bool, kernel_backend: str = "reference"
) -> tuple:
    """The scalar inputs a splitting's setup depends on.

    ``kernel_backend`` joins the identity because a cached splitting
    carries its armed sweep runner: a cache built under one backend must
    never serve a run requesting another.
    """
    beta = params.beta if params is not None else 0.5
    theta = params.theta if params is not None else 0.5
    return (
        float(lam), float(beta), float(theta), bool(fast_kernels),
        str(kernel_backend),
    )
