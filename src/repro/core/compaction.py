"""Row compaction: the legalizers' last-resort placement.

Greedy legalizers can fragment free space until no contiguous gap fits a
cell even though plenty of total free width remains.  ``compact_rows_and_
place`` restores totality: it left-compacts the cells of a candidate row
span — including multi-row cells whose footprint lies *fully inside* the
span, which slide as rigid units; fixed cells and multi-row cells sticking
out of the span stay put as barriers — and places the stranded cell in the
coalesced free space at the span's right end.

Succeeds whenever a left-packed layout of the span (barriers fixed) leaves
room for the new cell, i.e. in every case short of genuine capacity
exhaustion or barrier-induced fragmentation across the whole core.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

from repro.geometry import snap_down, snap_nearest, snap_up
from repro.legality.checker import row_tolerance
from repro.netlist.cell import CellInstance
from repro.netlist.design import Design
from repro.rows.sitemap import SiteMap

#: Per-row forbidden x-intervals (fence complements); see
#: :func:`compact_rows_and_place`.
BlockedMap = Dict[int, List[Tuple[float, float]]]


def compact_rows_and_place(
    design: Design,
    site_map: SiteMap,
    cell: CellInstance,
    ignore: "Optional[set]" = None,
    eligible: Optional[Callable[[CellInstance], bool]] = None,
    blocked: Optional[BlockedMap] = None,
) -> bool:
    """Find a row span for *cell* by compaction; commits moves on success.

    The caller's *site_map* must reflect the current committed placement of
    every cell except *cell* and the ids in *ignore* (cells the caller has
    not committed yet — e.g. other still-pending illegal cells, which must
    not masquerade as barriers at their stale positions); the map is
    updated in place together with the moved cells' coordinates.

    Fence support: *eligible* restricts which movable cells participate
    (cells of other fence groups are skipped entirely — they sit inside
    this group's *blocked* intervals, which enter the plan as immovable
    barriers).  *blocked* maps row index to forbidden x-intervals; both
    default to None, the unrestricted whole-core behaviour.
    """
    core = design.core
    ignore = ignore or set()
    home = core.nearest_correct_row(cell.master, cell.gp_y)
    max_bottom = core.num_rows - cell.height_rows
    order = sorted(
        (r for r in range(max_bottom + 1) if core.rails.row_is_correct(cell.master, r)),
        key=lambda r: abs(r - home),
    )
    for row in order:
        plan = _plan_compaction(design, cell, row, ignore, eligible, blocked)
        if plan is None:
            continue
        moves, end = plan
        _apply(design, site_map, cell, row, moves, end)
        return True
    return False


def evict_and_place(
    design: Design,
    site_map: SiteMap,
    cell: CellInstance,
    ignore: Optional[set] = None,
    max_evictions: int = 12,
    eligible: Optional[Callable[[CellInstance], bool]] = None,
    blocked: Optional[BlockedMap] = None,
    _frozen: Optional[set] = None,
    _depth: int = 2,
) -> bool:
    """Escalation beyond compaction: relocate singles out of a row span.

    When every rail-correct span of *cell* is over capacity even after
    compaction (possible for rail-locked even-height cells, whose legal
    rows are a strict subset), evict the rightmost movable cells touching
    the span — singles in the span, and multi-row cells that stick out of
    it and therefore act as unevictable barriers for plain compaction —
    until the plan fits; place *cell*; then re-place the evicted cells at
    their nearest free footprints elsewhere.  Bounded by *max_evictions*;
    returns False when even eviction cannot make room.

    Single-height victims are preferred (they are rail-flexible and easy to
    rehome); multi-row victims are rehomed with bounded recursion
    (``_depth``), with ``_frozen`` guarding against eviction cycles.
    """
    core = design.core
    ignore = set(ignore or ())
    frozen = set(_frozen or ())
    frozen.add(cell.id)
    home = core.nearest_correct_row(cell.master, cell.gp_y)
    max_bottom = core.num_rows - cell.height_rows
    order = sorted(
        (r for r in range(max_bottom + 1) if core.rails.row_is_correct(cell.master, r)),
        key=lambda r: abs(r - home),
    )
    for row in order:
        evicted: List[CellInstance] = []
        trial_ignore = set(ignore)
        plan = _plan_compaction(design, cell, row, trial_ignore, eligible, blocked)
        while plan is None and len(evicted) < max_evictions:
            victim = _rightmost_victim(
                design, cell, row, trial_ignore | frozen, eligible
            )
            if victim is None:
                break
            evicted.append(victim)
            trial_ignore.add(victim.id)
            plan = _plan_compaction(design, cell, row, trial_ignore, eligible, blocked)
        if plan is None:
            continue
        # Commit: release victims, apply the plan, re-place victims.
        for victim in evicted:
            site_map.release_cell(
                victim,
                victim.row_index,
                int(round((victim.x - core.xl) / core.site_width)),
            )
        moves, end = plan
        _apply(design, site_map, cell, row, moves, end)
        ok = True
        still_out = {v.id for v in evicted}
        for victim in evicted:
            still_out.discard(victim.id)
            victim.x = victim.gp_x
            victim.row_index = core.nearest_correct_row(victim.master, victim.gp_y)
            victim.y = core.row_y(victim.row_index)
            from repro.core.tetris_fix import TetrisFixStats, place_at_nearest_free

            stats = TetrisFixStats(num_cells=1)
            if place_at_nearest_free(victim, design, site_map, stats):
                continue
            if compact_rows_and_place(
                design, site_map, victim, ignore | still_out, eligible, blocked
            ):
                continue
            if _depth > 0 and evict_and_place(
                design,
                site_map,
                victim,
                ignore | still_out,
                max_evictions,
                eligible=eligible,
                blocked=blocked,
                _frozen=frozen,
                _depth=_depth - 1,
            ):
                continue
            victim.row_index = None
            ok = False
        if ok:
            return True
        # Victims could not be rehomed either: genuinely out of capacity.
        return False
    return False


def _rightmost_victim(
    design: Design,
    cell: CellInstance,
    row: int,
    ignore: set,
    eligible: Optional[Callable[[CellInstance], bool]] = None,
) -> Optional[CellInstance]:
    """The best eviction victim whose footprint touches the span.

    Single-height cells are preferred (rail-flexible, trivially rehomed
    anywhere); among equals the rightmost is chosen since compaction packs
    leftward.  Multi-row cells — including ones partially outside the span,
    which plain compaction must treat as immovable barriers — are only
    picked once no single remains.
    """
    span_lo, span_hi = row, row + cell.height_rows
    best_single: Optional[CellInstance] = None
    best_multi: Optional[CellInstance] = None
    for other in design.cells:
        if other is cell or other.id in ignore or other.fixed:
            continue
        if eligible is not None and not eligible(other):
            continue
        if other.row_index is None:
            continue
        if other.row_index >= span_hi or other.row_index + other.height_rows <= span_lo:
            continue
        if other.height_rows == 1:
            if best_single is None or other.x > best_single.x:
                best_single = other
        elif best_multi is None or other.x > best_multi.x:
            best_multi = other
    return best_single or best_multi


def _row_span(design: Design, cell: CellInstance) -> Optional[Tuple[int, int]]:
    """Rows ``[lo, hi)`` the cell's footprint touches.

    Movables sit on exact row boundaries, so their ``row_index`` is the
    span start.  Fixed cells need not be row-aligned (off-grid macros and
    obstacles are legal inputs), so their span is the full set of rows the
    rectangle geometrically touches — mirroring the Tetris site-map
    blocking, with the same ulp-aware boundary tolerance.
    """
    core = design.core
    if cell.row_index is not None:
        return cell.row_index, cell.row_index + cell.height_rows
    if cell.fixed:
        eps_y = row_tolerance(core) / core.row_height
        lo = int(math.floor((cell.y - core.yl) / core.row_height + eps_y))
        hi = int(
            math.ceil(
                (cell.y + cell.height(core.row_height) - core.yl)
                / core.row_height
                - eps_y
            )
        )
        return lo, max(hi, lo + 1)
    return None


def _plan_compaction(
    design: Design,
    cell: CellInstance,
    row: int,
    ignore: set,
    eligible: Optional[Callable[[CellInstance], bool]] = None,
    blocked: Optional[BlockedMap] = None,
) -> Optional[Tuple[List[Tuple[CellInstance, float]], float]]:
    """Left-compaction plan for the rows ``row .. row+h-1``.

    Returns ``(moves, x)`` where *moves* are (cell, new_x) pairs and *x* is
    the position for the stranded cell — the best free gap of the
    compacted span (immovable barriers partition the rows, so the gap is
    not necessarily at the right end), or None when even full compaction
    cannot make room.

    Items are ``(x, movable, width, rows, cell)``; *blocked* intervals
    enter as cell-less barrier items, so fence complements partition the
    span exactly like fixed cells do.
    """
    core = design.core
    h = cell.height_rows
    span_lo, span_hi = row, row + h

    items: List[Tuple[float, int, bool, float, range, Optional[CellInstance]]] = []
    for other in design.cells:
        if other is cell or other.id in ignore:
            continue
        if eligible is not None and not other.fixed and not eligible(other):
            # Other-group movables live inside this group's blocked
            # intervals; the intervals themselves are the barriers.
            continue
        span = _row_span(design, other)
        if span is None:
            continue
        olo, ohi = span
        if olo >= span_hi or ohi <= span_lo:
            continue
        movable = not other.fixed and span_lo <= olo and ohi <= span_hi
        rows_of = range(max(olo, span_lo), min(ohi, span_hi))
        items.append((other.x, other.id, movable, other.width, rows_of, other))
    if blocked:
        for r in range(span_lo, span_hi):
            for b_lo, b_hi in blocked.get(r, ()):
                if b_hi > b_lo:
                    items.append((b_lo, -1, False, b_hi - b_lo, range(r, r + 1), None))
    items.sort(key=lambda t: (t[0], t[1]))

    frontier: Dict[int, float] = {r: core.xl for r in range(span_lo, span_hi)}
    # Rightmost extent of *movable* placements per row: barriers may
    # legally overlap each other (overlapping fixed obstacles, a fence
    # interval abutting a macro), so only a movable passing a barrier's
    # left edge invalidates the plan — an earlier barrier pushing the
    # frontier past it does not.
    mov_end: Dict[int, float] = {r: core.xl for r in range(span_lo, span_hi)}
    occupied: Dict[int, List[Tuple[float, float]]] = {
        r: [] for r in range(span_lo, span_hi)
    }
    moves: List[Tuple[CellInstance, float]] = []
    for x, _, movable, width, rows_of, other in items:
        if not movable:
            # Barrier: no compacted movable may have passed it.
            if any(mov_end[r] > x + 1e-9 for r in rows_of):
                return None
            for r in rows_of:
                frontier[r] = max(frontier[r], x + width)
                occupied[r].append((x, x + width))
        else:
            # Movables sit on the site grid; an off-grid barrier (macros
            # need not be site-aligned) leaves the frontier between site
            # boundaries, so snap *up* — rounding could tuck the cell
            # back into the barrier.
            new_x = snap_up(
                max(frontier[r] for r in rows_of), core.xl, core.site_width
            )
            if new_x > x + 1e-9:
                # A legal input can't require rightward moves; bail out.
                return None
            if new_x < x - 1e-9:
                moves.append((other, new_x))
            for r in rows_of:
                frontier[r] = new_x + width
                mov_end[r] = max(mov_end[r], new_x + width)
                occupied[r].append((new_x, new_x + width))

    x = _best_gap(core, occupied, cell, span_lo, span_hi)
    if x is None:
        return None
    return moves, x


def _best_gap(
    core,
    occupied: Dict[int, List[Tuple[float, float]]],
    cell: CellInstance,
    span_lo: int,
    span_hi: int,
) -> Optional[float]:
    """Site-aligned position nearest cell.gp_x where the compacted span has
    a free gap of the cell's width in every spanned row."""
    free: Optional[List[Tuple[float, float]]] = None
    for r in range(span_lo, span_hi):
        segs = sorted(occupied[r])
        row_free: List[Tuple[float, float]] = []
        cursor = core.xl
        for lo, hi in segs:
            if lo > cursor + 1e-12:
                row_free.append((cursor, lo))
            cursor = max(cursor, hi)
        if cursor < core.xh - 1e-12:
            row_free.append((cursor, core.xh))
        if free is None:
            free = row_free
        else:
            merged: List[Tuple[float, float]] = []
            i = j = 0
            while i < len(free) and j < len(row_free):
                lo = max(free[i][0], row_free[j][0])
                hi = min(free[i][1], row_free[j][1])
                if hi > lo:
                    merged.append((lo, hi))
                if free[i][1] < row_free[j][1]:
                    i += 1
                else:
                    j += 1
            free = merged
    if free is None:  # zero-height span cannot happen, defensive
        return None
    best: Optional[float] = None
    for lo, hi in free:
        lo_site = snap_up(lo, core.xl, core.site_width)
        hi_site = snap_down(hi - cell.width, core.xl, core.site_width)
        if hi_site < lo_site - 1e-9:
            continue
        pos = snap_nearest(cell.gp_x, core.xl, core.site_width)
        pos = min(max(pos, lo_site), hi_site)
        if best is None or abs(pos - cell.gp_x) < abs(best - cell.gp_x):
            best = pos
    return best


def _apply(
    design: Design,
    site_map: SiteMap,
    cell: CellInstance,
    row: int,
    moves: List[Tuple[CellInstance, float]],
    x: float,
) -> None:
    core = design.core

    def site_of(x: float) -> int:
        return int(round((x - core.xl) / core.site_width))

    # Two phases: free every moving footprint, then occupy the new ones —
    # compaction moves overlap their own old footprints otherwise.
    for other, _ in moves:
        site_map.release_cell(other, other.row_index, site_of(other.x))
    for other, new_x in moves:
        site_map.occupy_cell(other, other.row_index, site_of(new_x))
        other.x = new_x

    cell.x = x
    cell.y = core.row_y(row)
    cell.row_index = row
    if cell.master.bottom_rail is not None and not cell.master.is_even_height:
        cell.flipped = core.rails.needs_flip(cell.master, row)
    site_map.occupy_cell(cell, row, site_of(x))
