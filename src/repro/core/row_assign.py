"""Stage 1 of the flow (Figure 4): align every cell to its nearest correct row.

"Correct" follows Section 3 of the paper:

* for an odd-row-height cell, the nearest row to its GP y position (a
  vertical flip fixes any rail mismatch, recorded in ``cell.flipped``);
* for an even-row-height cell, the nearest row whose bottom rail matches the
  cell's designed bottom-rail type.

Assigning every cell to its nearest correct row minimizes total
y-displacement independently of x (the y term of Problem (1) separates),
which is why the relaxation (5) only optimizes x afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.netlist.cell import CellInstance
from repro.netlist.design import Design, FenceRegion
from repro.rows.core_area import InfeasibleAssignment


@dataclass
class RowAssignment:
    """Outcome of nearest-correct-row alignment.

    ``rows[r]`` lists the cells whose *bottom* row is r, sorted by GP x
    (the paper's fixed cell ordering).  ``occupied[r]`` lists every cell
    whose body intersects row r, also sorted by GP x — this is the
    per-row sequence the QP constraints are generated from, where a
    multi-row cell appears in several rows.
    """

    rows: Dict[int, List[CellInstance]] = field(default_factory=dict)
    occupied: Dict[int, List[CellInstance]] = field(default_factory=dict)
    y_displacement: float = 0.0
    num_flipped: int = 0

    def cells_in_row(self, row: int) -> List[CellInstance]:
        return self.occupied.get(row, [])


def assign_rows(design: Design) -> RowAssignment:
    """Assign every movable cell to its nearest correct row (in place).

    Sets ``cell.y`` to the row bottom, ``cell.row_index`` to the bottom row,
    and ``cell.flipped`` where rail matching required a vertical flip.
    ``cell.x`` keeps the GP x position — the MMSIM stage optimizes it next.

    Raises :class:`~repro.rows.InfeasibleAssignment` (naming the offending
    cell) when a cell has no legal row at all — the design, not the flow,
    is at fault, and callers get a structured error instead of a crash or
    a silently wrong row deeper in the pipeline.
    """
    core = design.core
    assignment = RowAssignment()
    membership = design.fence_index_by_cell_id()
    for cell in design.movable_cells:
        fence = (
            design.fences[membership[cell.id]]
            if cell.id in membership
            else None
        )
        try:
            if fence is not None:
                row = _nearest_fence_row(design, cell, fence)
            else:
                row = core.nearest_correct_row(cell.master, cell.gp_y)
        except InfeasibleAssignment as exc:
            raise exc.for_cell(cell.name) from None
        cell.row_index = row
        cell.y = core.row_y(row)
        cell.x = cell.gp_x
        cell.flipped = (
            not cell.master.is_even_height
            and cell.master.bottom_rail is not None
            and core.rails.needs_flip(cell.master, row)
        )
        if cell.flipped:
            assignment.num_flipped += 1
        assignment.y_displacement += abs(cell.y - cell.gp_y)
        assignment.rows.setdefault(row, []).append(cell)
        for r in range(row, row + cell.height_rows):
            assignment.occupied.setdefault(r, []).append(cell)

    # The paper's fixed ordering: cells in each row sorted by GP x.
    # Tie-break on cell id for determinism (equal GP x happens in practice).
    for row_cells in assignment.rows.values():
        row_cells.sort(key=lambda c: (c.gp_x, c.id))
    for row_cells in assignment.occupied.values():
        row_cells.sort(key=lambda c: (c.gp_x, c.id))
    return assignment


def _nearest_fence_row(
    design: Design, cell: CellInstance, fence: FenceRegion
) -> int:
    """Nearest correct bottom row where the cell's full span has fence
    coverage wide enough to hold it.

    Like :meth:`CoreArea.nearest_correct_row` but the fit range is the
    fence region, not the core: every spanned row must be covered by the
    fence, and the x-intervals common to all spanned rows must admit the
    cell's width somewhere.
    """
    core = design.core
    best = None
    best_cost = None
    for row in core.correct_rows(cell.master):
        spans = fence.row_spans(core, row)
        for r in range(row + 1, row + cell.height_rows):
            if not spans:
                break
            upper = fence.row_spans(core, r)
            spans = _intersect_spans(spans, upper)
        if not any(hi - lo >= cell.width - 1e-9 * core.site_width
                   for lo, hi in spans):
            continue
        cost = abs(core.row_y(row) - cell.gp_y)
        if best is None or cost < best_cost:
            best, best_cost = row, cost
    if best is None:
        raise InfeasibleAssignment(
            cell.master.name,
            cell.master.height_rows,
            core.num_rows,
            bottom_rail=(
                cell.master.bottom_rail if cell.master.is_even_height else None
            ),
        )
    return best


def _intersect_spans(a, b):
    """Intersect two sorted disjoint (lo, hi) span lists."""
    out = []
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if hi > lo:
            out.append((lo, hi))
        if a[i][1] < b[j][1]:
            i += 1
        else:
            j += 1
    return out
