"""The paper's MMSIM splitting for the legalization KKT matrix (Eq. 16).

The KKT LCP matrix ``A = [[H, −Bᵀ], [B, 0]]`` has a zero bottom-right block,
so no diagonal-based splitting applies.  The paper instead splits

    M = [[H/β*, 0], [B, D/θ*]],     N = [[(1/β*−1)H, Bᵀ], [0, D/θ*]],

where ``D = tridiag(B H⁻¹ Bᵀ)`` approximates the Schur complement.  Since
``M + Ω`` (Ω = I) is *block lower triangular*, every MMSIM sweep costs one
sparse SPD solve with ``H/β* + I`` (prefactorized) and one tridiagonal solve
with ``D/θ* + I`` (prefactorized) — the sparsity exploitation the paper
credits for its speed.

``H⁻¹`` is never formed by factorization: with ``H = I + λEᵀE`` the
Sherman–Morrison–Woodbury identity gives

    H⁻¹ = I − λ Eᵀ (I_k + λ E Eᵀ)⁻¹ E,

and ``I_k + λEEᵀ`` is block diagonal (one small block per multi-row cell),
inverted exactly blockwise.  For designs whose multi-row cells are all
double height each block is 1×1 and the formula collapses to the paper's
closed form ``H⁻¹ = I − λ/(2λ+1) EᵀE``.

Convergence (paper's Theorem 2, via Bai–Parlett–Wang): 0 < β* < 2 and
0 < θ* < 2(2−β*) / (β* μ_max) with μ_max the top eigenvalue of
Γ = D⁻¹ B H⁻¹ Bᵀ.  Both the bound check and a power-iteration μ_max
estimate are provided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla
from scipy.sparse.csgraph import connected_components

from repro.telemetry import current_tracer


def woodbury_h_inverse(E: sp.spmatrix, lam: float) -> sp.csr_matrix:
    """Explicit sparse ``H⁻¹ = (I + λEᵀE)⁻¹`` via blockwise Woodbury.

    ``I_k + λEEᵀ`` decomposes into connected blocks (one per multi-row
    cell); each block is inverted densely (blocks are (d−1)×(d−1) for a
    d-row cell, i.e. tiny), giving an exactly sparse H⁻¹.
    """
    k, n = E.shape
    identity = sp.identity(n, format="csr")
    if k == 0:
        return identity
    E = sp.csr_matrix(E)
    C = (sp.identity(k, format="csr") + lam * (E @ E.T)).tocsr()
    G = _blockwise_inverse(C)
    return (identity - lam * (E.T @ G @ E)).tocsr()


def _blockwise_inverse(C: sp.csr_matrix) -> sp.csr_matrix:
    """Exact inverse of a block-diagonal sparse matrix (blocks found by
    connected components of its sparsity graph)."""
    k = C.shape[0]
    num_comp, labels = connected_components(C, directed=False)
    rows = []
    cols = []
    data = []
    order = np.argsort(labels, kind="stable")
    boundaries = np.searchsorted(labels[order], np.arange(num_comp + 1))
    for c in range(num_comp):
        idx = order[boundaries[c] : boundaries[c + 1]]
        block = C[np.ix_(idx, idx)].toarray()
        inv = np.linalg.inv(block)
        for a, ia in enumerate(idx):
            for b, ib in enumerate(idx):
                if inv[a, b] != 0.0:
                    rows.append(ia)
                    cols.append(ib)
                    data.append(inv[a, b])
    return sp.csr_matrix((data, (rows, cols)), shape=(k, k))


def schur_tridiagonal(
    B: sp.spmatrix, H_inv: sp.spmatrix
) -> sp.csr_matrix:
    """``D = tridiag(B H⁻¹ Bᵀ)``: the paper's Schur-complement approximation."""
    B = sp.csr_matrix(B)
    m = B.shape[0]
    if m == 0:
        return sp.csr_matrix((0, 0))
    S = (B @ H_inv @ B.T).tocsr()
    diag_main = S.diagonal()
    if m == 1:
        return sp.csr_matrix(np.array([[diag_main[0]]]))
    diag_lower = S.diagonal(-1)
    diag_upper = S.diagonal(1)
    return sp.diags(
        [diag_lower, diag_main, diag_upper], offsets=[-1, 0, 1], format="csr"
    )


@dataclass
class SplittingParameters:
    """β*, θ* of Eq. (16); the paper uses 0.5 for both in all experiments."""

    beta: float = 0.5
    theta: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.beta < 2.0:
            raise ValueError("β* must be in (0, 2) for MMSIM convergence")
        if self.theta <= 0.0:
            raise ValueError("θ* must be positive")


class LegalizationSplitting:
    """Splitting strategy (the :class:`repro.lcp.mmsim.Splitting` protocol)
    for the KKT LCP of a legalization QP.

    Parameters
    ----------
    H, B:
        Blocks of the KKT matrix (H = I + λEᵀE sparse SPD, B sparse with
        two nonzeros per row).
    E, lam:
        Equality structure and penalty, used for the Woodbury H⁻¹.
    params:
        β*, θ* constants.
    """

    def __init__(
        self,
        H: sp.spmatrix,
        B: sp.spmatrix,
        E: sp.spmatrix,
        lam: float,
        params: Optional[SplittingParameters] = None,
    ) -> None:
        self.params = params or SplittingParameters()
        self.H = sp.csr_matrix(H)
        self.B = sp.csr_matrix(B)
        self.n = self.H.shape[0]
        self.m = self.B.shape[0]
        tracer = current_tracer()
        with tracer.span("splitting.woodbury", n=self.n):
            self.H_inv = woodbury_h_inverse(E, lam)
        with tracer.span("splitting.schur", m=self.m):
            self.D = schur_tridiagonal(self.B, self.H_inv)

        beta, theta = self.params.beta, self.params.theta
        with tracer.span("splitting.factorize", nnz=int(self.H.nnz)):
            top = (self.H / beta + sp.identity(self.n)).tocsc()
            self._solve_top = spla.factorized(top)
            if self.m:
                bottom = (self.D / theta + sp.identity(self.m)).tocsc()
                self._solve_bottom = spla.factorized(bottom)
            else:
                self._solve_bottom = None

    # ------------------------------------------------------------------
    # Splitting protocol
    # ------------------------------------------------------------------
    def apply_N(self, s: np.ndarray) -> np.ndarray:
        s1, s2 = s[: self.n], s[self.n :]
        beta, theta = self.params.beta, self.params.theta
        top = (1.0 / beta - 1.0) * (self.H @ s1)
        if self.m:
            top = top + self.B.T @ s2
            bottom = (self.D @ s2) / theta
            return np.concatenate([top, bottom])
        return top

    def apply_omega_minus_A(self, s_abs: np.ndarray) -> np.ndarray:
        t1, t2 = s_abs[: self.n], s_abs[self.n :]
        top = t1 - self.H @ t1
        if self.m:
            top = top + self.B.T @ t2
            bottom = -(self.B @ t1) + t2
            return np.concatenate([top, bottom])
        return top

    def solve_M_plus_omega(self, rhs: np.ndarray) -> np.ndarray:
        r1, r2 = rhs[: self.n], rhs[self.n :]
        s1 = self._solve_top(r1)
        if not self.m:
            return s1
        s2 = self._solve_bottom(r2 - self.B @ s1)
        return np.concatenate([s1, s2])

    # ------------------------------------------------------------------
    # Theorem 2 convergence window
    # ------------------------------------------------------------------
    def estimate_mu_max(self, iterations: int = 80, seed: int = 7) -> float:
        """Power-iteration estimate of μ_max(Γ), Γ = D⁻¹ B H⁻¹ Bᵀ."""
        if self.m == 0:
            return 0.0
        solve_D = spla.factorized(sp.csc_matrix(self.D))
        rng = np.random.default_rng(seed)
        v = rng.standard_normal(self.m)
        v /= np.linalg.norm(v)
        mu = 0.0
        for _ in range(iterations):
            w = solve_D(self.B @ (self.H_inv @ (self.B.T @ v)))
            norm = np.linalg.norm(w)
            if norm == 0.0:
                return 0.0
            mu = norm
            v = w / norm
        return float(mu)

    def theta_upper_bound(self, mu_max: Optional[float] = None) -> float:
        """Theorem 2's bound ``2(2−β*) / (β* μ_max)`` for the current β*."""
        if mu_max is None:
            mu_max = self.estimate_mu_max()
        if mu_max <= 0.0:
            return float("inf")
        beta = self.params.beta
        return 2.0 * (2.0 - beta) / (beta * mu_max)

    def parameters_satisfy_theorem2(self, mu_max: Optional[float] = None) -> bool:
        """Whether (β*, θ*) sit inside the proven convergence window."""
        return 0.0 < self.params.theta < self.theta_upper_bound(mu_max)
