"""The paper's MMSIM splitting for the legalization KKT matrix (Eq. 16).

The KKT LCP matrix ``A = [[H, −Bᵀ], [B, 0]]`` has a zero bottom-right block,
so no diagonal-based splitting applies.  The paper instead splits

    M = [[H/β*, 0], [B, D/θ*]],     N = [[(1/β*−1)H, Bᵀ], [0, D/θ*]],

where ``D = tridiag(B H⁻¹ Bᵀ)`` approximates the Schur complement.  Since
``M + Ω`` (Ω = I) is *block lower triangular*, every MMSIM sweep costs one
solve with ``H/β* + I`` and one tridiagonal solve with ``D/θ* + I`` — the
sparsity exploitation the paper credits for its speed.

``H⁻¹`` is never formed by factorization: with ``H = I + λEᵀE`` the
Sherman–Morrison–Woodbury identity gives

    H⁻¹ = I − λ Eᵀ (I_k + λ E Eᵀ)⁻¹ E,

and ``I_k + λEEᵀ`` is block diagonal (one small block per multi-row cell),
inverted exactly blockwise.  For designs whose multi-row cells are all
double height each block is 1×1 and the formula collapses to the paper's
closed form ``H⁻¹ = I − λ/(2λ+1) EᵀE``.

Per-sweep kernels (``fast_kernels=True``, the default) exploit the same
structure instead of general SuperLU factorizations:

* the *top* block ``H/β* + I = ((1+β*)/β*)·(I + λ/(1+β*)·EᵀE)`` is again
  diagonal-plus-blockwise-low-rank, so its inverse comes from the same
  Woodbury identity and one solve is a single sparse matvec;
* the *bottom* block ``D/θ* + I`` is symmetric tridiagonal, prefactorized
  once with LAPACK ``pttrf`` (Cholesky-like, falling back to ``gttrf``
  then SuperLU if the matrix is not SPD) and solved with ``pttrs``;
* :meth:`LegalizationSplitting.apply_rhs` fuses ``N s + (Ω−A)|s| − γq``
  into one pass sharing the ``H@·``, ``B@·``, ``Bᵀ@·`` products and
  writing into a preallocated buffer, halving the matvec count of the
  separate :meth:`apply_N` / :meth:`apply_omega_minus_A` calls.

Every fast kernel is verified against the assembled block on a probe
vector at setup and silently falls back to ``spla.factorized`` when the
caller's ``H`` does not have the assumed ``I + λEᵀE`` structure.

Convergence (paper's Theorem 2, via Bai–Parlett–Wang): 0 < β* < 2 and
0 < θ* < 2(2−β*) / (β* μ_max) with μ_max the top eigenvalue of
Γ = D⁻¹ B H⁻¹ Bᵀ.  Both the bound check and a power-iteration μ_max
estimate are provided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla
from scipy.linalg import lapack
from scipy.sparse.csgraph import connected_components

from repro.kernels import arm_backend, csr_matvec_into, probe_vector
from repro.telemetry import current_tracer

#: Relative probe-vector tolerance for accepting a specialized kernel.
_KERNEL_VERIFY_TOL = 1e-9

# The direct-sparsetools matvec now lives in the kernel-backend package
# (repro.kernels.reference); keep the historical private name importable.
_csr_matvec_into = csr_matvec_into


def woodbury_h_inverse(E: sp.spmatrix, lam: float) -> sp.csr_matrix:
    """Explicit sparse ``H⁻¹ = (I + λEᵀE)⁻¹`` via blockwise Woodbury.

    ``I_k + λEEᵀ`` decomposes into connected blocks (one per multi-row
    cell); each block is inverted densely (blocks are (d−1)×(d−1) for a
    d-row cell, i.e. tiny), giving an exactly sparse H⁻¹.
    """
    k, n = E.shape
    identity = sp.identity(n, format="csr")
    if k == 0:
        return identity
    E = sp.csr_matrix(E)
    C = (sp.identity(k, format="csr") + lam * (E @ E.T)).tocsr()
    G = _blockwise_inverse(C)
    return (identity - lam * (E.T @ G @ E)).tocsr()


def _blockwise_inverse(C: sp.csr_matrix) -> sp.csr_matrix:
    """Exact inverse of a block-diagonal sparse matrix (blocks found by
    connected components of its sparsity graph).

    Blocks are gathered into dense ``(num_blocks, s, s)`` batches per
    block size ``s`` and inverted with one batched ``np.linalg.inv`` call
    each — no Python loop over block entries.
    """
    k = C.shape[0]
    num_comp, labels = connected_components(C, directed=False)
    sizes = np.bincount(labels, minlength=num_comp)
    order = np.argsort(labels, kind="stable")
    starts = np.concatenate([[0], np.cumsum(sizes)])
    # Position of every index within its block: order lists block members
    # contiguously, so subtracting each segment's start yields 0..s-1.
    pos = np.empty(k, dtype=np.intp)
    pos[order] = np.arange(k) - np.repeat(starts[:-1], sizes)

    coo = C.tocoo()
    entry_block = labels[coo.row]
    out_rows = []
    out_cols = []
    out_data = []
    for s in np.unique(sizes):
        blocks = np.where(sizes == s)[0]
        slot = np.full(num_comp, -1, dtype=np.intp)
        slot[blocks] = np.arange(len(blocks))
        mask = sizes[entry_block] == s
        dense = np.zeros((len(blocks), s, s))
        dense[
            slot[entry_block[mask]], pos[coo.row[mask]], pos[coo.col[mask]]
        ] = coo.data[mask]
        inv = np.linalg.inv(dense)
        idx = order[starts[blocks][:, None] + np.arange(s)[None, :]]
        out_rows.append(np.repeat(idx, s, axis=1).ravel())
        out_cols.append(np.tile(idx, (1, s)).ravel())
        out_data.append(inv.reshape(len(blocks), s * s).ravel())
    data = np.concatenate(out_data)
    nz = data != 0.0
    return sp.csr_matrix(
        (data[nz], (np.concatenate(out_rows)[nz], np.concatenate(out_cols)[nz])),
        shape=(k, k),
    )


def schur_tridiagonal(
    B: sp.spmatrix, H_inv: sp.spmatrix
) -> sp.csr_matrix:
    """``D = tridiag(B H⁻¹ Bᵀ)``: the paper's Schur-complement approximation."""
    B = sp.csr_matrix(B)
    m = B.shape[0]
    if m == 0:
        return sp.csr_matrix((0, 0))
    S = (B @ H_inv @ B.T).tocsr()
    diag_main = S.diagonal()
    if m == 1:
        return sp.csr_matrix(np.array([[diag_main[0]]]))
    diag_lower = S.diagonal(-1)
    diag_upper = S.diagonal(1)
    return sp.diags(
        [diag_lower, diag_main, diag_upper], offsets=[-1, 0, 1], format="csr"
    )


@dataclass
class SplittingParameters:
    """β*, θ* of Eq. (16); the paper uses 0.5 for both in all experiments."""

    beta: float = 0.5
    theta: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.beta < 2.0:
            raise ValueError("β* must be in (0, 2) for MMSIM convergence")
        if self.theta <= 0.0:
            raise ValueError("θ* must be positive")


class LegalizationSplitting:
    """Splitting strategy (the :class:`repro.lcp.mmsim.Splitting` protocol)
    for the KKT LCP of a legalization QP.

    Parameters
    ----------
    H, B:
        Blocks of the KKT matrix (H = I + λEᵀE sparse SPD, B sparse with
        two nonzeros per row).
    E, lam:
        Equality structure and penalty, used for the Woodbury H⁻¹.
    params:
        β*, θ* constants.
    fast_kernels:
        Use the closed-form Woodbury inverse for the top-block solve, the
        LAPACK banded factorization for the bottom block, and the fused
        :meth:`apply_rhs` sweep.  ``False`` restores the pre-optimization
        SuperLU path (kept for A/B benchmarking; results are identical to
        floating-point noise).
    kernel_backend:
        Sweep-kernel backend name from the :mod:`repro.kernels` registry.
        Non-reference backends are probe-gated at setup and arm
        ``self.sweep_runner`` (consumed by the blocked solver loops);
        any rejection degrades to the reference loop with a telemetry
        counter.  ``self.kernel_backend`` records the *effective* backend
        after gating.
    """

    def __init__(
        self,
        H: sp.spmatrix,
        B: sp.spmatrix,
        E: sp.spmatrix,
        lam: float,
        params: Optional[SplittingParameters] = None,
        fast_kernels: bool = True,
        kernel_backend: str = "reference",
    ) -> None:
        self.params = params or SplittingParameters()
        self._requested_backend = kernel_backend
        self.H = sp.csr_matrix(H)
        self.B = sp.csr_matrix(B)
        self.E = sp.csr_matrix(E)
        self.lam = float(lam)
        self.n = self.H.shape[0]
        self.m = self.B.shape[0]
        tracer = current_tracer()
        with tracer.span("splitting.woodbury", n=self.n):
            self.H_inv = woodbury_h_inverse(E, lam)
        with tracer.span("splitting.schur", m=self.m):
            self.D = schur_tridiagonal(self.B, self.H_inv)
        self._setup_solvers(fast_kernels)

    def rebuilt(self, fast_kernels: bool = False) -> "LegalizationSplitting":
        """A fresh splitting over the same blocks with different kernels.

        The solver fallback ladder (:mod:`repro.core.resilience`) uses
        this to retry a failed shard on the reference SuperLU path,
        ruling the specialized Woodbury/LAPACK kernels out as the cause —
        which is also why the rebuild never re-arms a sweep backend.
        """
        return LegalizationSplitting(
            self.H,
            self.B,
            self.E,
            self.lam,
            params=self.params,
            fast_kernels=fast_kernels,
            kernel_backend="reference",
        )

    # ------------------------------------------------------------------
    # Solver setup (shared with GeneralSplitting)
    # ------------------------------------------------------------------
    def _setup_solvers(self, fast_kernels: bool) -> None:
        """Prefactorize the block solves and allocate sweep buffers.

        Expects ``self.H``, ``self.B``, ``self.D``, ``self.params`` (and,
        for the Woodbury top-block shortcut, ``self.E``/``self.lam``) to
        be set.
        """
        self.fast_kernels = fast_kernels
        #: Which kernel won each block solve — "woodbury"/"superlu" for
        #: the top, "scalar"/"pttrs"/"gttrs"/"superlu"/"none" for the
        #: bottom.  The batched micro-shard engine
        #: (:mod:`repro.core.batched`) requires the specialized kernels
        #: and reads these to decide group eligibility.
        self.top_kernel = "superlu"
        self.bottom_kernel = "none"
        self.BT = self.B.T.tocsr()
        tracer = current_tracer()
        with tracer.span(
            "splitting.factorize", nnz=int(self.H.nnz), fast=fast_kernels
        ):
            self._solve_top = self._build_top_solver(fast_kernels)
            self._solve_bottom = (
                self._build_bottom_solver(fast_kernels) if self.m else None
            )
        if fast_kernels:
            # Preallocated sweep state: prescaled matrices plus buffers,
            # so one fused rhs application allocates nothing.
            self._D_theta = (self.D / self.params.theta).tocsr()
            self._B_neg = (-self.B).tocsr()
            self._rhs_buf = np.empty(self.n + self.m)
            self._u_buf = np.empty(self.n)
            self._w_buf = np.empty(self.m)
        # The fused sweep is part of the fast path so `fast_kernels=False`
        # reproduces the pre-optimization per-sweep work exactly.
        self.apply_rhs: Optional[Callable] = (
            self._apply_rhs_fused if fast_kernels else None
        )
        # Sweep-kernel backend (repro.kernels): probe-gated at setup;
        # anything but a verified non-reference backend leaves
        # sweep_runner None and the solver loops on the reference path.
        # GeneralSplitting (which shares this setup) never requests one.
        requested = getattr(self, "_requested_backend", "reference")
        self.sweep_runner = None
        self.kernel_backend = "reference"
        if fast_kernels and requested not in (None, "reference"):
            self.sweep_runner, self.kernel_backend = arm_backend(
                self, requested
            )

    def _build_top_solver(self, fast_kernels: bool) -> Callable:
        """Solver for ``H/β* + I``.

        With ``H = I + λEᵀE``,

            H/β* + I = ((1+β*)/β*) · (I + λ/(1+β*) · EᵀE),

        the same diagonal-plus-blockwise structure as H itself, so its
        exact inverse comes from :func:`woodbury_h_inverse` and one solve
        is a single sparse matvec.  Verified on a probe vector; any
        mismatch (caller passed a different H) falls back to SuperLU.
        """
        beta = self.params.beta
        E = getattr(self, "E", None)
        lam = getattr(self, "lam", None)
        self._H_inv_top: Optional[sp.csr_matrix] = None
        self.top_kernel = "superlu"
        if fast_kernels and E is not None and lam is not None:
            alpha = (1.0 + beta) / beta
            inv_top = (
                woodbury_h_inverse(E, lam / (1.0 + beta)) / alpha
            ).tocsr()
            # Pure-chain shards (E empty) have H = I exactly; the Woodbury
            # inverse is the identity and needs no probe verification, so
            # the common micro-shard case skips assembling H/β* + I
            # entirely.
            if E.nnz == 0 and self.H.nnz == self.n and np.array_equal(
                self.H.diagonal(), np.ones(self.n)
            ):
                self._H_inv_top = inv_top
                self.top_kernel = "woodbury"
                return lambda r, _M=inv_top: _M @ r
            top = (self.H / beta + sp.identity(self.n)).tocsc()
            probe = self._probe_vector(self.n)
            err = np.max(np.abs(top @ (inv_top @ probe) - probe))
            if err <= _KERNEL_VERIFY_TOL * max(1.0, float(np.max(np.abs(probe)))):
                self._H_inv_top = inv_top
                self.top_kernel = "woodbury"
                return lambda r, _M=inv_top: _M @ r
            return spla.factorized(top)
        top = (self.H / beta + sp.identity(self.n)).tocsc()
        return spla.factorized(top)

    def _build_bottom_solver(self, fast_kernels: bool) -> Callable:
        """Prefactorized solver for the tridiagonal ``D/θ* + I``.

        LAPACK ``pttrf``/``pttrs`` (symmetric positive definite
        tridiagonal) when it applies — D is the tridiagonal part of the
        SPD Schur complement, so it virtually always does — else
        ``gttrf``/``gttrs`` (general tridiagonal), else SuperLU.
        """
        theta = self.params.theta
        bottom = (self.D / theta + sp.identity(self.m)).tocsr()
        self._pttrf_factors = None
        self._bottom_pivot = None
        if fast_kernels:
            d = bottom.diagonal()
            if self.m == 1:
                pivot = float(d[0])
                if pivot != 0.0:
                    self.bottom_kernel = "scalar"
                    self._bottom_pivot = pivot
                    return lambda r, _p=pivot: r / _p
            else:
                dl = bottom.diagonal(-1)
                du = bottom.diagonal(1)
                probe = self._probe_vector(self.m)
                scale = max(1.0, float(np.max(np.abs(probe))))
                if np.allclose(dl, du, rtol=1e-12, atol=1e-14):
                    df, ef, info = lapack.dpttrf(d, dl)
                    if info == 0:
                        x, _ = lapack.dpttrs(df, ef, probe)
                        if (
                            np.max(np.abs(bottom @ x - probe))
                            <= _KERNEL_VERIFY_TOL * scale
                        ):
                            self.bottom_kernel = "pttrs"
                            # Raw factors for JIT backends that re-run the
                            # pttrs recurrences themselves.
                            self._pttrf_factors = (df, ef)
                            return (
                                lambda r, _d=df, _e=ef:
                                lapack.dpttrs(_d, _e, r)[0]
                            )
                dlf, df, duf, du2, ipiv, info = lapack.dgttrf(dl, d, du)
                if info == 0:
                    x, _ = lapack.dgttrs(dlf, df, duf, du2, ipiv, probe)
                    if (
                        np.max(np.abs(bottom @ x - probe))
                        <= _KERNEL_VERIFY_TOL * scale
                    ):
                        self.bottom_kernel = "gttrs"
                        return (
                            lambda r, _a=dlf, _b=df, _c=duf, _d2=du2, _p=ipiv:
                            lapack.dgttrs(_a, _b, _c, _d2, _p, r)[0]
                        )
        self.bottom_kernel = "superlu"
        return spla.factorized(bottom.tocsc())

    @staticmethod
    def _probe_vector(size: int) -> np.ndarray:
        # The capped probe cache lives with the backend registry now
        # (repro.kernels.reference.probe_vector) so block-solver probes
        # and backend probe gates share one bounded store.
        return probe_vector(size)

    # ------------------------------------------------------------------
    # Splitting protocol
    # ------------------------------------------------------------------
    def apply_N(self, s: np.ndarray) -> np.ndarray:
        # Reference implementation (and the pre-optimization sweep, kept
        # verbatim for honest `fast_kernels=False` A/B benchmarks); the
        # solver uses the fused apply_rhs on the fast path instead.
        s1, s2 = s[: self.n], s[self.n :]
        beta, theta = self.params.beta, self.params.theta
        top = (1.0 / beta - 1.0) * (self.H @ s1)
        if self.m:
            top = top + self.B.T @ s2
            bottom = (self.D @ s2) / theta
            return np.concatenate([top, bottom])
        return top

    def apply_omega_minus_A(self, s_abs: np.ndarray) -> np.ndarray:
        t1, t2 = s_abs[: self.n], s_abs[self.n :]
        top = t1 - self.H @ t1
        if self.m:
            top = top + self.B.T @ t2
            bottom = -(self.B @ t1) + t2
            return np.concatenate([top, bottom])
        return top

    def _apply_rhs_fused(
        self, s: np.ndarray, s_abs: np.ndarray, gq: np.ndarray
    ) -> np.ndarray:
        """One-pass ``N s + (Ω − A)|s| − γq`` into a reused buffer.

        Folding the two N/(Ω−A) applications shares each sparse product:

            top    = H @ ((1/β*−1)·s₁ − |s|₁) + Bᵀ @ (s₂ + |s|₂) + |s|₁ − γq₁
            bottom = (D/θ*) @ s₂ − B @ |s|₁ + |s|₂ − γq₂

        — one matvec per matrix instead of two, every matvec accumulated
        straight into a preallocated buffer (no ``np.concatenate``, no
        temporaries).  The returned array is owned by the splitting and
        overwritten by the next call; the MMSIM consumes it immediately.
        """
        n = self.n
        s1 = s[:n]
        t1 = s_abs[:n]
        u = self._u_buf
        np.multiply(s1, 1.0 / self.params.beta - 1.0, out=u)
        u -= t1
        out = self._rhs_buf
        top = out[:n]
        np.subtract(t1, gq[:n], out=top)
        _csr_matvec_into(self.H, u, top)
        if self.m:
            s2 = s[n:]
            t2 = s_abs[n:]
            w = self._w_buf
            np.add(s2, t2, out=w)
            _csr_matvec_into(self.BT, w, top)
            bottom = out[n:]
            np.subtract(t2, gq[n:], out=bottom)
            _csr_matvec_into(self._D_theta, s2, bottom)
            _csr_matvec_into(self._B_neg, t1, bottom)
        return out

    def solve_M_plus_omega(self, rhs: np.ndarray) -> np.ndarray:
        if not self.fast_kernels:
            s1 = self._solve_top(rhs[: self.n])
            if not self.m:
                return np.asarray(s1)
            return np.concatenate(
                [s1, self._solve_bottom(rhs[self.n :] - self.B @ s1)]
            )
        n = self.n
        out = np.zeros(n + self.m)
        s1 = out[:n]
        if self._H_inv_top is not None:
            _csr_matvec_into(self._H_inv_top, rhs[:n], s1)
        else:
            s1[:] = self._solve_top(rhs[:n])
        if self.m:
            w = self._w_buf
            np.copyto(w, rhs[n:])
            _csr_matvec_into(self._B_neg, s1, w)
            out[n:] = self._solve_bottom(w)
        return out

    # ------------------------------------------------------------------
    # Theorem 2 convergence window
    # ------------------------------------------------------------------
    def estimate_mu_max(self, iterations: int = 80, seed: int = 7) -> float:
        """Power-iteration estimate of μ_max(Γ), Γ = D⁻¹ B H⁻¹ Bᵀ."""
        if self.m == 0:
            return 0.0
        solve_D = spla.factorized(sp.csc_matrix(self.D))
        rng = np.random.default_rng(seed)
        v = rng.standard_normal(self.m)
        v /= np.linalg.norm(v)
        mu = 0.0
        for _ in range(iterations):
            w = solve_D(self.B @ (self.H_inv @ (self.BT @ v)))
            norm = np.linalg.norm(w)
            if norm == 0.0:
                return 0.0
            mu = norm
            v = w / norm
        return float(mu)

    def theta_upper_bound(self, mu_max: Optional[float] = None) -> float:
        """Theorem 2's bound ``2(2−β*) / (β* μ_max)`` for the current β*."""
        if mu_max is None:
            mu_max = self.estimate_mu_max()
        if mu_max <= 0.0:
            return float("inf")
        beta = self.params.beta
        return 2.0 * (2.0 - beta) / (beta * mu_max)

    def parameters_satisfy_theorem2(self, mu_max: Optional[float] = None) -> bool:
        """Whether (β*, θ*) sit inside the proven convergence window."""
        return 0.0 < self.params.theta < self.theta_upper_bound(mu_max)
