"""The paper's contribution: the MMSIM-LCP mixed-cell-height legalizer."""

from repro.core.compaction import compact_rows_and_place, evict_and_place
from repro.core.rebalance import rebalance_rows
from repro.core.legalizer import (
    LegalizationResult,
    LegalizerConfig,
    MMSIMLegalizer,
    PreparedLegalization,
    legalize,
    legalize_incremental,
)
from repro.core.multi import DesignJob, legalize_many
from repro.core.qp_builder import (
    LegalizationQP,
    build_constraints,
    build_legalization_qp,
)
from repro.core.resilience import (
    RUNGS,
    ResilienceConfig,
    RungAttempt,
    ShardEscalation,
    solve_monolithic_resilient,
    solve_shard_resilient,
    solve_sharded_resilient,
)
from repro.core.row_assign import RowAssignment, assign_rows
from repro.core.setup_cache import ReuseCache, SetupCache, TrustInfo
from repro.core.state import (
    SolverState,
    StaleWarmStart,
    design_fingerprint,
    load_solver_state,
    save_solver_state,
)
from repro.rows.core_area import InfeasibleAssignment
from repro.core.sharding import (
    Shard,
    ShardedKKT,
    build_shards,
    coupling_components,
    shard_legalization_qp,
    solve_sharded,
)
from repro.core.splitting import (
    LegalizationSplitting,
    SplittingParameters,
    schur_tridiagonal,
    woodbury_h_inverse,
)
from repro.core.subcells import SubcellModel, restore_cells, split_cells
from repro.core.tetris_fix import TetrisFixStats, tetris_allocate

__all__ = [
    "compact_rows_and_place",
    "evict_and_place",
    "rebalance_rows",
    "MMSIMLegalizer",
    "LegalizerConfig",
    "LegalizationResult",
    "PreparedLegalization",
    "legalize",
    "legalize_incremental",
    "DesignJob",
    "legalize_many",
    "assign_rows",
    "RowAssignment",
    "InfeasibleAssignment",
    "ReuseCache",
    "SetupCache",
    "TrustInfo",
    "SolverState",
    "StaleWarmStart",
    "design_fingerprint",
    "load_solver_state",
    "save_solver_state",
    "split_cells",
    "restore_cells",
    "SubcellModel",
    "build_legalization_qp",
    "build_constraints",
    "LegalizationQP",
    "LegalizationSplitting",
    "SplittingParameters",
    "woodbury_h_inverse",
    "schur_tridiagonal",
    "Shard",
    "ShardedKKT",
    "build_shards",
    "coupling_components",
    "shard_legalization_qp",
    "solve_sharded",
    "tetris_allocate",
    "TetrisFixStats",
    "RUNGS",
    "ResilienceConfig",
    "RungAttempt",
    "ShardEscalation",
    "solve_monolithic_resilient",
    "solve_shard_resilient",
    "solve_sharded_resilient",
]
