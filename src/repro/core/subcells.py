"""Stage 2 of the flow (Figure 4): multi-row cell splitting and restoration.

A cell of height d rows assigned to bottom row r is modelled by d
single-row *subcells*, one per occupied row, all sharing the cell's width
and GP x target.  The equality constraints ``Ex = 0`` tie the subcells'
x variables together; following the paper's Figure 3 example, E uses the
*star* pattern: one row ``x_{i,1} − x_{i,j} = 0`` for each extra subcell
j = 2..d (coefficients −1 on the first subcell, +1 on subcell j).

After the MMSIM solve, :func:`restore_cells` writes each cell's x back as
the mean of its subcells and reports the worst subcell mismatch — nonzero
mismatch (bounded by the λ penalty) is one source of Table 1's rare
illegal cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np
import scipy.sparse as sp

from repro.core.row_assign import RowAssignment
from repro.netlist.cell import CellInstance
from repro.netlist.design import Design


@dataclass(frozen=True)
class Subcell:
    """One single-row slice of a (possibly multi-row) cell."""

    var: int            # variable index in the QP
    cell: CellInstance  # owning cell
    row: int            # chip row this slice lives in
    slice_index: int    # 0 for the bottom slice


@dataclass
class SubcellModel:
    """Variable space of the relaxed QP.

    ``subcells`` is indexed by variable id; ``by_cell[cell.id]`` lists the
    cell's variable ids bottom-up; ``row_sequence[r]`` is the ordered (by GP
    x) list of variable ids occupying chip row r — the sequence the
    non-overlap constraints are generated from.
    """

    subcells: List[Subcell] = field(default_factory=list)
    by_cell: Dict[int, List[int]] = field(default_factory=dict)
    row_sequence: Dict[int, List[int]] = field(default_factory=dict)

    @property
    def num_variables(self) -> int:
        return len(self.subcells)

    def width_of(self, var: int) -> float:
        return self.subcells[var].cell.width

    def target_of(self, var: int, x_origin: float) -> float:
        """GP x target of a variable, shifted so the core left edge is 0."""
        return self.subcells[var].cell.gp_x - x_origin

    def width_array(self) -> np.ndarray:
        """All subcell widths as one array (computed fresh — the model may
        be reused across runs while the underlying cells mutate)."""
        return np.fromiter(
            (sc.cell.width for sc in self.subcells),
            dtype=float,
            count=len(self.subcells),
        )

    def target_array(self, x_origin: float) -> np.ndarray:
        """All shifted GP x targets as one array (computed fresh, like
        :meth:`width_array`)."""
        return np.fromiter(
            (sc.cell.gp_x - x_origin for sc in self.subcells),
            dtype=float,
            count=len(self.subcells),
        )

    def equality_matrix(self) -> sp.csr_matrix:
        """The paper's E: one star row per extra subcell of multi-row cells."""
        rows: List[int] = []
        cols: List[int] = []
        data: List[float] = []
        k = 0
        for cell_id in sorted(self.by_cell):
            vars_of_cell = self.by_cell[cell_id]
            if len(vars_of_cell) < 2:
                continue
            first = vars_of_cell[0]
            for other in vars_of_cell[1:]:
                rows.extend([k, k])
                cols.extend([first, other])
                data.extend([-1.0, 1.0])
                k += 1
        return sp.csr_matrix(
            (data, (rows, cols)), shape=(k, self.num_variables)
        )


def split_cells(design: Design, assignment: RowAssignment) -> SubcellModel:
    """Create the subcell variable space from a row assignment.

    Variable ids are dense, assigned cell by cell in id order and bottom-up
    within a cell; ``row_sequence`` respects the GP-x ordering already
    established by :func:`repro.core.row_assign.assign_rows`.
    """
    model = SubcellModel()
    for cell in design.movable_cells:
        if cell.row_index is None:
            raise ValueError(
                f"cell {cell.name!r} has no row assignment; run assign_rows first"
            )
        vars_of_cell: List[int] = []
        for j in range(cell.height_rows):
            var = len(model.subcells)
            model.subcells.append(
                Subcell(var=var, cell=cell, row=cell.row_index + j, slice_index=j)
            )
            vars_of_cell.append(var)
        model.by_cell[cell.id] = vars_of_cell

    # Row sequences follow the assignment's per-row GP-x order.
    for row, cells in assignment.occupied.items():
        seq: List[int] = []
        for cell in cells:
            slice_index = row - cell.row_index
            seq.append(model.by_cell[cell.id][slice_index])
        model.row_sequence[row] = seq
    return model


def restore_cells(
    design: Design, model: SubcellModel, x: np.ndarray, x_origin: float
) -> Tuple[float, float]:
    """Write solved x values back to cells (mean over subcells).

    Returns ``(max_mismatch, mean_mismatch)`` over multi-row cells, where a
    cell's mismatch is the spread ``max_j x_j − min_j x_j`` of its subcell
    positions (0 for single-row cells).  With the paper's λ = 1000 the
    spread is tiny; the Tetris stage absorbs whatever remains.
    """
    cells = design.movable_cells
    if not cells:
        return 0.0, 0.0
    by_cell = model.by_cell
    # Gather subcell values grouped per cell and reduce with reduceat —
    # the per-cell np.mean/np.max calls this replaces dominated restore
    # time on large designs.
    counts = np.fromiter(
        (len(by_cell[cell.id]) for cell in cells), dtype=np.intp, count=len(cells)
    )
    idx = np.fromiter(
        (v for cell in cells for v in by_cell[cell.id]),
        dtype=np.intp,
        count=int(counts.sum()),
    )
    values = np.asarray(x, dtype=float)[idx]
    starts = np.concatenate([[0], np.cumsum(counts[:-1])])
    means = np.add.reduceat(values, starts) / counts + x_origin
    spreads = (
        np.maximum.reduceat(values, starts)
        - np.minimum.reduceat(values, starts)
    )
    for cell, mean in zip(cells, means.tolist()):
        cell.x = mean
    multi = counts > 1
    num_multi = int(np.count_nonzero(multi))
    if not num_multi:
        return 0.0, 0.0
    max_mismatch = float(np.max(spreads[multi]))
    mean_mismatch = float(np.sum(spreads[multi])) / num_multi
    return max_mismatch, mean_mismatch
