"""The chip core: a stack of uniform placement rows over a site grid.

:class:`CoreArea` is the geometric context of legalization: the core
rectangle, the row height, the site width, and the power-rail scheme.  All
coordinates are normalized so the core's bottom-left corner is the origin of
the row/site grid — the paper's ``x >= 0`` constraint is the left core edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.geometry import Rect, snap_nearest
from repro.netlist.cell import CellMaster, RailType
from repro.rows.power import RailScheme


class InfeasibleAssignment(ValueError):
    """No legal row exists for a cell in this core.

    Raised by :meth:`CoreArea.nearest_correct_row` when the design is
    structurally infeasible — the master is taller than the core, or it is
    an even-row-height master and no rail-matching row lies in its vertical
    fit range (e.g. a 2-row cell in a 2-row core whose single legal bottom
    row has the wrong rail).  Subclasses :class:`ValueError` so existing
    callers that caught the old unstructured error keep working.

    Attributes carry the structured context: ``master_name``,
    ``height_rows``, ``num_rows``, ``bottom_rail`` (or None), and
    ``cell_name`` once :func:`repro.core.row_assign.assign_rows` has
    attached the offending instance.
    """

    def __init__(
        self,
        master_name: str,
        height_rows: int,
        num_rows: int,
        bottom_rail=None,
        cell_name=None,
    ) -> None:
        self.master_name = master_name
        self.height_rows = height_rows
        self.num_rows = num_rows
        self.bottom_rail = bottom_rail
        self.cell_name = cell_name
        rail = f", bottom rail {bottom_rail.value}" if bottom_rail is not None else ""
        prefix = f"cell {cell_name!r}: " if cell_name is not None else ""
        super().__init__(
            f"{prefix}no legal row for master {master_name!r} "
            f"(height {height_rows} rows{rail}) in a {num_rows}-row core"
        )

    def for_cell(self, cell_name: str) -> "InfeasibleAssignment":
        """A copy of this error naming the offending cell instance."""
        return InfeasibleAssignment(
            self.master_name,
            self.height_rows,
            self.num_rows,
            bottom_rail=self.bottom_rail,
            cell_name=cell_name,
        )


@dataclass(frozen=True)
class CoreArea:
    """Core region with uniform rows.

    Parameters
    ----------
    xl, yl:
        Bottom-left corner of the core.
    num_rows:
        Number of placement rows stacked bottom-up.
    row_height:
        Height of each row in database units.
    num_sites:
        Number of placement sites per row.
    site_width:
        Width of one placement site in database units.
    rails:
        Alternating VDD/VSS scheme anchoring rail parity to row 0.
    """

    xl: float = 0.0
    yl: float = 0.0
    num_rows: int = 1
    row_height: float = 9.0
    num_sites: int = 1
    site_width: float = 1.0
    rails: RailScheme = field(default_factory=RailScheme)

    def __post_init__(self) -> None:
        if self.num_rows < 1:
            raise ValueError("core needs at least one row")
        if self.num_sites < 1:
            raise ValueError("core needs at least one site per row")
        if self.row_height <= 0 or self.site_width <= 0:
            raise ValueError("row_height and site_width must be positive")

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    @property
    def xh(self) -> float:
        return self.xl + self.num_sites * self.site_width

    @property
    def yh(self) -> float:
        return self.yl + self.num_rows * self.row_height

    @property
    def width(self) -> float:
        return self.xh - self.xl

    @property
    def height(self) -> float:
        return self.yh - self.yl

    def rect(self) -> Rect:
        return Rect(self.xl, self.yl, self.xh, self.yh)

    def row_y(self, row_index: int) -> float:
        """Bottom y coordinate of a row."""
        if not 0 <= row_index < self.num_rows:
            raise IndexError(f"row index {row_index} out of range")
        return self.yl + row_index * self.row_height

    def row_of_y(self, y: float) -> int:
        """Row index whose bottom is nearest to *y* (clamped into range)."""
        idx = round((y - self.yl) / self.row_height)
        return min(max(int(idx), 0), self.num_rows - 1)

    def site_x(self, site_index: int) -> float:
        """Left x coordinate of a site column."""
        return self.xl + site_index * self.site_width

    def snap_x(self, x: float) -> float:
        """Snap an x coordinate to the nearest site boundary (may be outside)."""
        return snap_nearest(x, self.xl, self.site_width)

    def clamp_site_x(self, x: float, cell_width: float) -> float:
        """Snap x to the site grid and clamp so the cell stays inside the core."""
        snapped = self.snap_x(x)
        lo = self.xl
        hi = self.xh - cell_width
        return min(max(snapped, lo), max(lo, hi))

    # ------------------------------------------------------------------
    # Rail-aware row legality (delegates to the scheme with core bounds)
    # ------------------------------------------------------------------
    def row_is_correct(self, master: CellMaster, row_index: int) -> bool:
        """Legal bottom row for the master, including vertical-fit bounds."""
        if row_index < 0 or row_index + master.height_rows > self.num_rows:
            return False
        return self.rails.row_is_correct(master, row_index)

    def nearest_correct_row(self, master: CellMaster, y: float) -> int:
        """Nearest legal bottom row for a cell whose GP bottom y is *y*.

        Raises :class:`InfeasibleAssignment` when no legal row exists at
        all — the cell is taller than the core, or it is even-height and no
        rail-matching row lies within its vertical fit range.
        """
        row = self.rails.nearest_correct_row(
            master, y, self.yl, self.row_height, self.num_rows
        )
        if row is None:
            raise InfeasibleAssignment(
                master.name,
                master.height_rows,
                self.num_rows,
                bottom_rail=master.bottom_rail if master.is_even_height else None,
            )
        return row

    def correct_rows(self, master: CellMaster) -> List[int]:
        """All legal bottom rows for the master, bottom-up."""
        return [
            r
            for r in range(self.num_rows - master.height_rows + 1)
            if self.rails.row_is_correct(master, r)
        ]

    def bottom_rail(self, row_index: int) -> RailType:
        return self.rails.bottom_rail(row_index)
