"""Free-site tracking across rows.

:class:`SiteMap` maintains, for every row, the set of free x-intervals,
and answers multi-row placement queries: "where, at site granularity, can a
cell spanning rows r..r+h-1 be placed nearest to x?".  It is the workhorse
of the Tetris-like allocation stage and of the greedy baselines.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Tuple

from repro.geometry import Interval, IntervalSet
from repro.netlist.cell import CellInstance
from repro.rows.core_area import CoreArea


class SiteMap:
    """Per-row free-interval bookkeeping at site granularity.

    Internally intervals are kept in *site index* units (integers stored as
    floats), which makes snapping trivial and avoids floating-point drift
    when cells are repeatedly placed and removed.
    """

    def __init__(self, core: CoreArea) -> None:
        self.core = core
        self._rows: List[IntervalSet] = [
            IntervalSet([Interval(0.0, float(core.num_sites))])
            for _ in range(core.num_rows)
        ]

    # ------------------------------------------------------------------
    # Unit conversion
    # ------------------------------------------------------------------
    def sites_of_width(self, width: float) -> int:
        """Number of sites a cell of *width* occupies (rounded up)."""
        return max(1, int(math.ceil(width / self.core.site_width - 1e-9)))

    def x_to_site(self, x: float) -> float:
        """Continuous site coordinate of an x position."""
        return (x - self.core.xl) / self.core.site_width

    def site_to_x(self, site: float) -> float:
        return self.core.xl + site * self.core.site_width

    # ------------------------------------------------------------------
    # Occupation
    # ------------------------------------------------------------------
    def occupy(self, row: int, site_lo: int, num_sites: int) -> None:
        """Mark ``num_sites`` sites starting at ``site_lo`` in one row used."""
        self._rows[row].occupy(float(site_lo), float(site_lo + num_sites))

    def release(self, row: int, site_lo: int, num_sites: int) -> None:
        self._rows[row].release(float(site_lo), float(site_lo + num_sites))

    def block(self, row: int, site_lo: int, num_sites: int) -> None:
        """Mark sites used, tolerating overlap with already-used sites.

        For fixed-obstacle blocking: overlapping fixed cells are a legal
        input, so blocking is a union operation, not an exclusive claim.
        """
        self._rows[row].subtract(float(site_lo), float(site_lo + num_sites))

    def occupy_cell(self, cell: CellInstance, row: int, site_lo: int) -> None:
        """Occupy the footprint of *cell* with bottom row *row*."""
        n = self.sites_of_width(cell.width)
        for r in range(row, row + cell.height_rows):
            self.occupy(r, site_lo, n)

    def release_cell(self, cell: CellInstance, row: int, site_lo: int) -> None:
        n = self.sites_of_width(cell.width)
        for r in range(row, row + cell.height_rows):
            self.release(r, site_lo, n)

    def free_intervals(self, row: int) -> List[Interval]:
        return self._rows[row].intervals()

    def is_free(self, row: int, site_lo: int, num_sites: int) -> bool:
        if row < 0 or row >= self.core.num_rows:
            return False
        if site_lo < 0 or site_lo + num_sites > self.core.num_sites:
            return False
        return self._rows[row].covers(float(site_lo), float(site_lo + num_sites))

    def footprint_free(self, row: int, site_lo: int, num_sites: int, height_rows: int) -> bool:
        """Free across all rows of a multi-row footprint."""
        if row + height_rows > self.core.num_rows:
            return False
        return all(
            self.is_free(r, site_lo, num_sites) for r in range(row, row + height_rows)
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def nearest_fit_in_row(
        self, row: int, x: float, width: float, height_rows: int = 1
    ) -> Optional[int]:
        """Least-displacement site index for a footprint in a given bottom row.

        For single-row cells this is a direct interval query; for multi-row
        cells we scan candidate positions from the free intervals of the
        bottom row and validate against the upper rows.
        """
        n = self.sites_of_width(width)
        target = self.x_to_site(x)
        if height_rows == 1:
            pos = self._rows[row].nearest_fit(target, float(n))
            if pos is None:
                return None
            site = int(round(min(max(pos, 0.0), float(self.core.num_sites - n))))
            site = self._snap_feasible(row, site, n, target)
            return site
        return self._nearest_multirow_fit(row, target, n, height_rows)

    def _snap_feasible(self, row: int, site: int, n: int, target: float) -> Optional[int]:
        """Round a continuous fit to an integer site that is actually free."""
        for cand in (site, site - 1, site + 1):
            if self.is_free(row, cand, n):
                return cand
        # Fall back to scanning outward (rare: only at interval edges).
        for step in range(2, self.core.num_sites):
            for cand in (site - step, site + step):
                if self.is_free(row, cand, n):
                    return cand
        return None

    def _nearest_multirow_fit(
        self, row: int, target: float, n: int, height_rows: int
    ) -> Optional[int]:
        """Nearest site where all rows of the footprint are free.

        Strategy: intersect the free intervals of the involved rows, then
        pick the nearest integer site inside the intersection.
        """
        if row + height_rows > self.core.num_rows:
            return None
        merged: List[Interval] = self.free_intervals(row)
        for r in range(row + 1, row + height_rows):
            upper = self.free_intervals(r)
            merged = _intersect_interval_lists(merged, upper)
            if not merged:
                return None
        best: Optional[int] = None
        best_cost = float("inf")
        for iv in merged:
            lo = int(math.ceil(iv.lo - 1e-9))
            hi = int(math.floor(iv.hi + 1e-9)) - n
            if hi < lo:
                continue
            site = int(round(min(max(target, lo), hi)))
            site = min(max(site, lo), hi)
            cost = abs(site - target)
            if cost < best_cost:
                best_cost = cost
                best = site
        return best

    def nearest_fit(
        self,
        x: float,
        y: float,
        width: float,
        height_rows: int,
        candidate_rows: Iterable[int],
    ) -> Optional[Tuple[int, int, float]]:
        """Best (row, site, cost) over candidate bottom rows.

        Cost is the Manhattan displacement from ``(x, y)`` to the placed
        bottom-left corner.  Rows are assumed pre-filtered for rail
        correctness by the caller.
        """
        best: Optional[Tuple[int, int, float]] = None
        for row in candidate_rows:
            site = self.nearest_fit_in_row(row, x, width, height_rows)
            if site is None:
                continue
            px = self.site_to_x(site)
            py = self.core.row_y(row)
            cost = abs(px - x) + abs(py - y)
            if best is None or cost < best[2]:
                best = (row, site, cost)
        return best


def _intersect_interval_lists(a: List[Interval], b: List[Interval]) -> List[Interval]:
    """Intersection of two sorted disjoint interval lists (merge sweep)."""
    out: List[Interval] = []
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i].lo, b[j].lo)
        hi = min(a[i].hi, b[j].hi)
        if hi > lo:
            out.append(Interval(lo, hi))
        if a[i].hi < b[j].hi:
            i += 1
        else:
            j += 1
    return out
