"""Power-rail scheme of a standard-cell row structure.

In a standard-cell design, VDD and VSS rails alternate between rows: every
row boundary carries one rail, shared by the row below and the row above.
A :class:`RailScheme` answers, for any row index, which rail type lies at
the row's bottom (and top) boundary, and whether a cell of a given height
and bottom-rail type may legally sit with its bottom on that row.

The rules implemented here follow Section 1 / Figure 1 of the paper:

* Odd-row-height cells (1, 3, ... rows) can be placed on *any* row — if the
  rails do not line up directly, a vertical flip fixes them, because an
  odd-height cell's top and bottom boundaries carry *different* rail types.
* Even-row-height cells (2, 4, ... rows) have the *same* rail type on both
  boundaries, so flipping cannot help: the row's bottom rail must equal the
  cell's designed bottom rail, which restricts the cell to every other row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.netlist.cell import CellMaster, RailType


@dataclass(frozen=True)
class RailScheme:
    """Alternating VDD/VSS rails; ``bottom_rail_of_row_0`` anchors the parity."""

    bottom_rail_of_row_0: RailType = RailType.VSS

    def bottom_rail(self, row_index: int) -> RailType:
        """Rail type at the bottom boundary of *row_index*."""
        if row_index % 2 == 0:
            return self.bottom_rail_of_row_0
        return self.bottom_rail_of_row_0.opposite()

    def top_rail(self, row_index: int) -> RailType:
        """Rail type at the top boundary of *row_index* (== bottom of next)."""
        return self.bottom_rail(row_index + 1)

    # ------------------------------------------------------------------
    # Placement legality
    # ------------------------------------------------------------------
    def row_is_correct(self, master: CellMaster, row_index: int) -> bool:
        """May a cell of this master sit with its bottom on *row_index*?

        Odd-height masters: always (vertical flipping resolves mismatch).
        Even-height masters: only when the row's bottom rail matches the
        master's designed bottom rail.
        """
        if not master.is_even_height:
            return True
        return self.bottom_rail(row_index) == master.bottom_rail

    def needs_flip(self, master: CellMaster, row_index: int) -> bool:
        """Whether an odd-height cell must be flipped to match the rails.

        A master with no declared ``bottom_rail`` is rail-agnostic and never
        needs flipping.  Raises for even-height masters on incorrect rows —
        those cannot be fixed by flipping.
        """
        if master.bottom_rail is None:
            return False
        if master.is_even_height:
            if not self.row_is_correct(master, row_index):
                raise ValueError(
                    f"even-height master {master.name!r} cannot be placed on "
                    f"row {row_index}: rail mismatch is not fixable by flipping"
                )
            return False
        return self.bottom_rail(row_index) != master.bottom_rail

    def nearest_correct_row(
        self,
        master: CellMaster,
        y: float,
        row_y0: float,
        row_height: float,
        num_rows: int,
    ) -> Optional[int]:
        """Nearest row index (by |y - row_y|) legal for *master*.

        The cell must also fit vertically: a cell of height ``h`` rows can
        occupy bottom rows ``0 .. num_rows - h``.  Returns None when the
        design has no legal row at all (e.g., height taller than the core).
        """
        max_bottom = num_rows - master.height_rows
        if max_bottom < 0:
            return None
        # Real-valued nearest row, then clamp and search outward.
        ideal = round((y - row_y0) / row_height)
        ideal = min(max(ideal, 0), max_bottom)
        if self.row_is_correct(master, ideal):
            return ideal
        # Alternate rows outward from the ideal one.
        for step in range(1, max_bottom + 2):
            for cand in (ideal - step, ideal + step):
                if 0 <= cand <= max_bottom and self.row_is_correct(master, cand):
                    # Among the two candidates at this step, prefer the one
                    # truly nearest in y (they are equidistant in index but
                    # the real y may break the tie).
                    other = ideal + step if cand == ideal - step else ideal - step
                    if (
                        0 <= other <= max_bottom
                        and self.row_is_correct(master, other)
                    ):
                        y_cand = row_y0 + cand * row_height
                        y_other = row_y0 + other * row_height
                        if abs(y_other - y) < abs(y_cand - y):
                            return other
                    return cand
        return None
