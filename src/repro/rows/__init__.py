"""Row structure: core area, power-rail scheme, and free-site tracking."""

from repro.rows.core_area import CoreArea, InfeasibleAssignment
from repro.rows.power import RailScheme
from repro.rows.sitemap import SiteMap

__all__ = ["CoreArea", "InfeasibleAssignment", "RailScheme", "SiteMap"]
