"""repro — reproduction of "Toward Optimal Legalization for Mixed-Cell-Height
Circuit Designs" (Chen, Zhu, Zhu, Chang; DAC 2017).

Public API highlights
---------------------
- :class:`repro.Design`, :class:`repro.CellMaster`, :class:`repro.CoreArea`
  — the placement database.
- :func:`repro.legalize` / :class:`repro.MMSIMLegalizer` — the paper's
  MMSIM-LCP legalization flow (Figure 4).
- :mod:`repro.baselines` — Tetris, Abacus, and the DAC'16 / ASP-DAC'17-style
  comparators of Table 2.
- :mod:`repro.benchgen` — synthetic ISPD-2015-style mixed-cell-height
  benchmarks matching the paper's Table 1 statistics.
- :func:`repro.check_legality` — independent legality verification.
"""

from repro.detailed import DetailedPlacer
from repro.core import (
    LegalizationResult,
    LegalizerConfig,
    MMSIMLegalizer,
    legalize,
)
from repro.legality import check_legality
from repro.metrics import displacement_stats, wirelength_stats
from repro.netlist import (
    CellInstance,
    CellMaster,
    Design,
    FenceRegion,
    Net,
    Pin,
    RailType,
)
from repro.rows import CoreArea, RailScheme

__version__ = "1.0.0"

__all__ = [
    "Design",
    "FenceRegion",
    "CellMaster",
    "CellInstance",
    "RailType",
    "Net",
    "Pin",
    "CoreArea",
    "RailScheme",
    "MMSIMLegalizer",
    "LegalizerConfig",
    "LegalizationResult",
    "legalize",
    "DetailedPlacer",
    "check_legality",
    "displacement_stats",
    "wirelength_stats",
    "__version__",
]
