"""Experiment harness: comparisons, table rendering, and the paper's data."""

from repro.analysis.compare import RunRecord, normalized_averages, run_comparison, run_one
from repro.analysis.experiments import (
    ExperimentReport,
    run_sec53,
    run_table1,
    run_table2,
)
from repro.analysis.paper_data import (
    PAPER_SECTION53,
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE2_NORMALIZED,
    TABLE2_ALGORITHMS,
)
from repro.analysis.tables import format_table

__all__ = [
    "run_one",
    "run_table1",
    "run_table2",
    "run_sec53",
    "ExperimentReport",
    "run_comparison",
    "normalized_averages",
    "RunRecord",
    "format_table",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_TABLE2_NORMALIZED",
    "PAPER_SECTION53",
    "TABLE2_ALGORITHMS",
]
