"""The paper's published numbers (Tables 1 and 2), kept verbatim.

The benchmark harness prints these next to our measured values so
EXPERIMENTS.md can record paper-vs-measured for every row without manual
transcription.  All values are copied from the paper:

* Table 1 — illegal cells after the MMSIM legalization;
* Table 2 — total displacement (sites), ΔHPWL (%), runtime (s) for the four
  compared legalizers, plus the normalized-average row;
* Section 5.3 — the single-row optimality experiment's reported figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class Table1Row:
    """One row of the paper's Table 1."""

    num_single: int
    num_double: int
    density: float
    num_illegal: int
    illegal_percent: float  # the "%I. Cell" column; <0.01 recorded as 0.005


@dataclass(frozen=True)
class Table2Row:
    """One row of the paper's Table 2 (per-algorithm triples)."""

    gp_hpwl_m: float
    disp: Dict[str, int]          # algorithm -> total displacement (sites)
    delta_hpwl_pct: Dict[str, float]
    runtime_s: Dict[str, float]


#: Algorithm keys used in Table 2, in the paper's column order, mapped to
#: the reimplementation that plays that role here.
TABLE2_ALGORITHMS = {
    "dac16": "chow",
    "dac16_imp": "chow_imp",
    "aspdac17": "wang",
    "ours": "mmsim",
}

PAPER_TABLE1: Dict[str, Table1Row] = {
    "des_perf_1": Table1Row(103842, 8802, 0.91, 902, 0.80),
    "des_perf_a": Table1Row(99775, 8513, 0.43, 11, 0.01),
    "des_perf_b": Table1Row(103842, 8802, 0.50, 6, 0.005),
    "edit_dist_a": Table1Row(121913, 5500, 0.46, 20, 0.02),
    "fft_1": Table1Row(30297, 1984, 0.84, 183, 0.57),
    "fft_2": Table1Row(30297, 1984, 0.50, 2, 0.005),
    "fft_a": Table1Row(28718, 1907, 0.25, 2, 0.005),
    "fft_b": Table1Row(28718, 1907, 0.28, 10, 0.03),
    "matrix_mult_1": Table1Row(152427, 2898, 0.80, 88, 0.06),
    "matrix_mult_2": Table1Row(152427, 2898, 0.79, 62, 0.04),
    "matrix_mult_a": Table1Row(146837, 2813, 0.42, 3, 0.005),
    "matrix_mult_b": Table1Row(143695, 2740, 0.31, 7, 0.005),
    "matrix_mult_c": Table1Row(143695, 2740, 0.31, 2, 0.005),
    "pci_bridge32_a": Table1Row(26268, 3249, 0.38, 0, 0.0),
    "pci_bridge32_b": Table1Row(25734, 3180, 0.14, 0, 0.0),
    "superblue11_a": Table1Row(861314, 64302, 0.43, 40, 0.005),
    "superblue12": Table1Row(1172586, 114362, 0.45, 89, 0.005),
    "superblue14": Table1Row(564769, 47474, 0.56, 264, 0.04),
    "superblue16_a": Table1Row(625419, 55031, 0.48, 42, 0.005),
    "superblue19": Table1Row(478109, 27988, 0.52, 62, 0.01),
}


def _t2(gp, d16, d16i, dasp, dours, h16, h16i, hasp, hours, r16, r16i, rasp, rours):
    return Table2Row(
        gp_hpwl_m=gp,
        disp={"dac16": d16, "dac16_imp": d16i, "aspdac17": dasp, "ours": dours},
        delta_hpwl_pct={"dac16": h16, "dac16_imp": h16i, "aspdac17": hasp, "ours": hours},
        runtime_s={"dac16": r16, "dac16_imp": r16i, "aspdac17": rasp, "ours": rours},
    )


PAPER_TABLE2: Dict[str, Table2Row] = {
    "des_perf_1": _t2(1.43, 373978, 279545, 474789, 242622, 2.85, 1.77, 0.99, 1.12, 7.2, 6.1, 7.5, 2.4),
    "des_perf_a": _t2(2.57, 103956, 81452, 73057, 72561, 0.28, 0.16, 0.12, 0.07, 2.6, 2.5, 3.8, 2.3),
    "des_perf_b": _t2(2.13, 95747, 81540, 72429, 71888, 0.31, 0.21, 0.16, 0.08, 2.4, 2.2, 3.9, 2.3),
    "edit_dist_a": _t2(5.25, 59884, 59814, 60971, 62961, 0.10, 0.10, 0.12, 0.09, 1.9, 1.8, 4.9, 2.8),
    "fft_1": _t2(0.46, 58429, 54501, 53389, 46121, 1.66, 1.47, 0.89, 0.87, 1.1, 1.0, 1.3, 0.7),
    "fft_2": _t2(0.46, 27762, 25697, 21018, 20979, 0.87, 0.73, 0.67, 0.51, 0.4, 0.4, 1.1, 0.6),
    "fft_a": _t2(0.75, 19600, 19613, 18150, 18304, 0.33, 0.33, 0.29, 0.24, 0.3, 0.2, 1.2, 0.6),
    "fft_b": _t2(0.95, 24500, 28461, 21234, 21671, 0.33, 0.18, 0.30, 0.27, 0.4, 0.4, 1.2, 0.6),
    "matrix_mult_1": _t2(2.39, 82322, 80235, 73682, 71793, 0.28, 0.27, 0.21, 0.21, 3.9, 4.0, 5.4, 3.6),
    "matrix_mult_2": _t2(2.59, 76109, 75810, 65959, 65876, 0.22, 0.21, 0.17, 0.17, 4.0, 4.2, 5.4, 3.7),
    "matrix_mult_a": _t2(3.77, 49385, 46001, 40736, 40298, 0.14, 0.11, 0.09, 0.08, 1.6, 1.6, 5.7, 3.4),
    "matrix_mult_b": _t2(3.43, 43931, 40059, 37243, 37215, 0.13, 0.10, 0.09, 0.08, 1.3, 1.2, 5.6, 3.2),
    "matrix_mult_c": _t2(3.29, 42466, 42490, 40942, 40710, 0.11, 0.11, 0.11, 0.09, 1.4, 1.4, 5.6, 3.2),
    "pci_bridge32_a": _t2(0.46, 28041, 27832, 26674, 26289, 0.58, 0.57, 0.63, 0.45, 0.3, 0.3, 1.2, 0.6),
    "pci_bridge32_b": _t2(0.98, 27757, 27864, 26160, 26028, 0.13, 0.13, 0.06, 0.05, 0.2, 0.2, 1.0, 0.4),
    "superblue11_a": _t2(42.94, 1795695, 1786342, 1983090, 1742941, 0.15, 0.15, 0.26, 0.16, 23.4, 29.7, 50.3, 26.3),
    "superblue12": _t2(39.23, 2097725, 2015678, 1995140, 1963403, 0.22, 0.20, 0.22, 0.21, 106.5, 103.6, 56.5, 38.6),
    "superblue14": _t2(27.98, 1604077, 1599810, 1497490, 1566966, 0.22, 0.22, 0.18, 0.23, 17.1, 16.7, 48.1, 17.7),
    "superblue16_a": _t2(31.35, 1177179, 1173106, 1147530, 1135186, 0.12, 0.11, 0.11, 0.11, 21.7, 20.7, 41.8, 18.7),
    "superblue19": _t2(20.76, 809755, 806529, 808164, 781928, 0.14, 0.14, 0.13, 0.12, 10.9, 10.5, 29.6, 13.2),
}

#: The paper's "N. Average" row of Table 2 (normalized to "Ours").
PAPER_TABLE2_NORMALIZED = {
    "disp": {"dac16": 1.16, "dac16_imp": 1.10, "aspdac17": 1.06, "ours": 1.00},
    "delta_hpwl": {"dac16": 1.72, "dac16_imp": 1.41, "aspdac17": 1.22, "ours": 1.00},
    "runtime": {"dac16": 1.02, "dac16_imp": 0.97, "aspdac17": 1.96, "ours": 1.00},
}

#: Section 5.3: single-row designs; MMSIM matches PlaceRow exactly and is
#: 1.51x faster; the paper quotes three benchmark displacement totals.
PAPER_SECTION53 = {
    "speedup_vs_placerow": 1.51,
    "displacements": {
        "des_perf_1": 58850,
        "superblue12": 1618580,
        "pci_bridge32_b": 2023,
    },
}


def paper_table1(name: str) -> Optional[Table1Row]:
    return PAPER_TABLE1.get(name)


def paper_table2(name: str) -> Optional[Table2Row]:
    return PAPER_TABLE2.get(name)
