"""Programmatic regenerators for the paper's experiments.

The benchmark harness (``benchmarks/bench_*.py``) and the CLI
(``repro-legalize bench ...``) both drive these functions; they return
structured rows plus a rendered table so callers can assert on the shape or
just print it.

Each function takes ``cell_cap`` (per-benchmark movable-cell budget; the
paper's full sizes correspond to no cap) and a ``seed``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.compare import RunRecord, normalized_averages, run_comparison
from repro.analysis.paper_data import PAPER_TABLE1, PAPER_TABLE2_NORMALIZED
from repro.analysis.tables import format_table
from repro.baselines import ChowLegalizer, PlaceRowLegalizer, TetrisLegalizer, WangLegalizer
from repro.benchgen import PAPER_PROFILES, make_benchmark
from repro.core import LegalizerConfig, MMSIMLegalizer
from repro.legality import check_legality

#: Table 2 role mapping: implementation name per paper column.
PAPER_ROLE = {
    "chow": "dac16",
    "chow_imp": "dac16_imp",
    "wang": "aspdac17",
    "mmsim": "ours",
}


def _scale(profile, cell_cap: Optional[int]) -> float:
    if not cell_cap:
        return 1.0
    return min(1.0, cell_cap / profile.num_cells)


@dataclass
class ExperimentReport:
    """Rows + rendered text of one regenerated experiment."""

    name: str
    rows: List[list]
    text: str
    extra: Dict[str, object] = field(default_factory=dict)


def run_table1(cell_cap: int = 2000, seed: int = 2017) -> ExperimentReport:
    """Regenerate Table 1: illegal cells after the MMSIM stage."""
    rows = []
    total_fraction = 0.0
    for profile in PAPER_PROFILES:
        design = make_benchmark(
            profile.name, scale=_scale(profile, cell_cap), seed=seed, with_nets=False
        )
        result = MMSIMLegalizer().legalize(design)
        hist = design.count_by_height()
        paper = PAPER_TABLE1[profile.name]
        fraction = 100.0 * result.tetris.illegal_fraction
        total_fraction += fraction
        rows.append(
            [
                profile.name,
                hist.get(1, 0),
                hist.get(2, 0),
                round(design.density(), 2),
                result.num_illegal,
                round(fraction, 2),
                paper.num_illegal,
                paper.illegal_percent,
            ]
        )
    rows.append(
        [
            "Average",
            sum(r[1] for r in rows) // len(rows),
            sum(r[2] for r in rows) // len(rows),
            round(sum(r[3] for r in rows) / len(rows), 2),
            round(sum(r[4] for r in rows) / len(rows), 1),
            round(total_fraction / len(PAPER_PROFILES), 3),
            90,
            0.03,
        ]
    )
    text = format_table(
        ["benchmark", "#S.Cell", "#D.Cell", "density", "#I.Cell", "%I.Cell",
         "paper #I", "paper %I"],
        rows,
        title="Table 1 (scaled synthetic instances vs paper)",
    )
    return ExperimentReport(name="table1", rows=rows, text=text)


def table2_legalizers() -> Sequence:
    """The five legalizers of the Table 2 comparison, in column order."""
    return [
        TetrisLegalizer(),
        ChowLegalizer(),
        ChowLegalizer(improved=True),
        WangLegalizer(),
        MMSIMLegalizer(),
    ]


def run_table2(cell_cap: int = 2000, seed: int = 2017) -> ExperimentReport:
    """Regenerate Table 2: five-way comparison over all 20 benchmarks."""
    records: List[RunRecord] = []
    for profile in PAPER_PROFILES:
        scale = _scale(profile, cell_cap)

        def factory(name=profile.name, s=scale):
            return make_benchmark(name, scale=s, seed=seed)

        records.extend(run_comparison(factory, table2_legalizers()))

    norm = normalized_averages(records, "mmsim")
    norm_rows = []
    for name in ("tetris", "chow", "chow_imp", "wang", "mmsim"):
        vals = norm[name]
        role = PAPER_ROLE.get(name)
        norm_rows.append(
            [
                name,
                round(vals["disp"], 3),
                PAPER_TABLE2_NORMALIZED["disp"].get(role, "-") if role else "-",
                round(vals["delta_hpwl"], 3),
                PAPER_TABLE2_NORMALIZED["delta_hpwl"].get(role, "-") if role else "-",
                round(vals["runtime"], 2),
            ]
        )
    text = format_table(
        ["algorithm", "norm disp", "paper", "norm ΔHPWL", "paper", "norm runtime"],
        norm_rows,
        title="Table 2 normalized averages (paper's N. Average row)",
    )
    return ExperimentReport(
        name="table2",
        rows=norm_rows,
        text=text,
        extra={"records": records, "normalized": norm},
    )


def run_sec53(cell_cap: int = 2000, seed: int = 2017) -> ExperimentReport:
    """Regenerate Section 5.3: MMSIM vs PlaceRow on single-row designs."""
    rows = []
    num_equal = 0
    t_mm_total = t_pr_total = 0.0
    for profile in PAPER_PROFILES:
        scale = _scale(profile, cell_cap)
        d_mm = make_benchmark(
            profile.name, scale=scale, seed=seed, mixed=False, with_nets=False
        )
        t0 = time.perf_counter()
        res_mm = MMSIMLegalizer(
            LegalizerConfig(tol=1e-8, residual_tol=1e-6)
        ).legalize(d_mm)
        t_mm = time.perf_counter() - t0
        d_pr = make_benchmark(
            profile.name, scale=scale, seed=seed, mixed=False, with_nets=False
        )
        t0 = time.perf_counter()
        res_pr = PlaceRowLegalizer().legalize(d_pr)
        t_pr = time.perf_counter() - t0
        if not (check_legality(d_mm).is_legal and check_legality(d_pr).is_legal):
            raise AssertionError(f"illegal result on {profile.name}")
        mm = res_mm.displacement.total_manhattan_sites
        pr = res_pr.displacement.total_manhattan_sites
        equal = abs(mm - pr) < 1e-6
        num_equal += equal
        t_mm_total += t_mm
        t_pr_total += t_pr
        rows.append(
            [profile.name, round(mm, 1), round(pr, 1),
             "yes" if equal else "NO", round(t_mm, 3), round(t_pr, 3)]
        )
    text = format_table(
        ["benchmark", "MMSIM disp", "PlaceRow disp", "equal", "MMSIM s", "PlaceRow s"],
        rows,
        title="Section 5.3: single-row-height optimality cross-check",
    ) + (
        f"\nequal on {num_equal}/20 benchmarks"
        f"\nMMSIM/PlaceRow runtime ratio: {t_mm_total / max(t_pr_total, 1e-9):.2f}x\n"
    )
    return ExperimentReport(
        name="sec53",
        rows=rows,
        text=text,
        extra={"num_equal": num_equal, "t_mm": t_mm_total, "t_pr": t_pr_total},
    )
