"""Uniform multi-legalizer comparison harness (Table 2 machinery).

``run_comparison`` runs several legalizers on *identical copies* of a
design (positions reset between runs) and measures every algorithm with the
same, external metric code — no legalizer reports its own score.  The
result is a list of :class:`RunRecord` plus normalized averages exactly as
the paper's "N. Average" row computes them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.legality.checker import check_legality
from repro.metrics.displacement import displacement_stats
from repro.metrics.hpwl import wirelength_stats
from repro.netlist.design import Design


@dataclass
class RunRecord:
    """One (design, algorithm) measurement."""

    design: str
    algorithm: str
    disp_sites: float
    delta_hpwl: float
    runtime: float
    legal: bool
    num_violations: int
    extra: Dict[str, float] = field(default_factory=dict)


def run_one(design: Design, legalizer) -> RunRecord:
    """Run a legalizer on a design (in place) and measure externally."""
    start = time.perf_counter()
    result = legalizer.legalize(design)
    runtime = time.perf_counter() - start
    report = check_legality(design)
    disp = displacement_stats(design)
    wl = wirelength_stats(design) if design.nets else None
    extra: Dict[str, float] = {}
    for key in ("num_illegal", "iterations", "num_failed"):
        value = getattr(result, key, None)
        if value is not None:
            extra[key] = float(value)
    return RunRecord(
        design=design.name,
        algorithm=legalizer.name,
        disp_sites=disp.total_manhattan_sites,
        delta_hpwl=wl.delta_hpwl if wl else 0.0,
        runtime=runtime,
        legal=report.is_legal,
        num_violations=len(report.violations),
        extra=extra,
    )


def run_comparison(
    design_factory: Callable[[], Design],
    legalizers: Sequence,
) -> List[RunRecord]:
    """Run every legalizer on a fresh copy of the same design.

    ``design_factory`` must return an identical design each call (e.g. a
    deterministic generator closure or ``lambda: base.clone()``).
    """
    records = []
    for legalizer in legalizers:
        design = design_factory()
        records.append(run_one(design, legalizer))
    return records


def normalized_averages(
    records: List[RunRecord], reference_algorithm: str
) -> Dict[str, Dict[str, float]]:
    """The paper's "N. Average": per-benchmark ratios vs a reference
    algorithm, averaged over benchmarks, for disp / ΔHPWL / runtime."""
    by_design: Dict[str, Dict[str, RunRecord]] = {}
    for rec in records:
        by_design.setdefault(rec.design, {})[rec.algorithm] = rec

    sums: Dict[str, Dict[str, float]] = {}
    counts: Dict[str, int] = {}
    for design, algos in by_design.items():
        ref = algos.get(reference_algorithm)
        if ref is None:
            continue
        for name, rec in algos.items():
            entry = sums.setdefault(name, {"disp": 0.0, "delta_hpwl": 0.0, "runtime": 0.0})
            entry["disp"] += rec.disp_sites / ref.disp_sites if ref.disp_sites else 1.0
            entry["delta_hpwl"] += (
                rec.delta_hpwl / ref.delta_hpwl if ref.delta_hpwl > 0 else 1.0
            )
            entry["runtime"] += rec.runtime / ref.runtime if ref.runtime else 1.0
            counts[name] = counts.get(name, 0) + 1
    return {
        name: {k: v / counts[name] for k, v in entry.items()}
        for name, entry in sums.items()
    }
