"""Plain-text table rendering for benchmark reports.

Minimal, dependency-free fixed-width tables used by the benchmark harness
to print Table 1 / Table 2 style reports next to the paper's numbers.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width table.

    Numbers are right-aligned and formatted compactly; everything else is
    left-aligned.  Returns a string ending in a newline.
    """
    rendered: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str], row_values: Optional[Sequence[Any]] = None) -> str:
        parts = []
        for i, cell in enumerate(cells):
            value = row_values[i] if row_values is not None else None
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                parts.append(cell.rjust(widths[i]))
            elif row_values is None:
                parts.append(cell.ljust(widths[i]))
            else:
                parts.append(cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("  ".join("-" * w for w in widths))
    for raw, row in zip(rows, rendered):
        out.append(line(row, raw))
    return "\n".join(out) + "\n"


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)
