"""Density utilities.

Table 1 characterizes each benchmark by its placement density (movable cell
area over core area).  For diagnostics we also provide a binned density map,
which the benchmark generator uses to verify that synthetic instances hit
their target density profile.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.netlist.design import Design


def global_density(design: Design) -> float:
    """Movable cell area divided by core area."""
    return design.density()


def density_map(design: Design, bins_x: int = 16, bins_y: int = 16) -> np.ndarray:
    """Cell-area density per bin, evaluated at current positions.

    Returns a ``(bins_y, bins_x)`` array whose entries are the fraction of
    each bin's area covered by cells (can exceed 1 before legalization).
    """
    core = design.core
    grid = np.zeros((bins_y, bins_x), dtype=float)
    bw = core.width / bins_x
    bh = core.height / bins_y
    for cell in design.movable_cells:
        xl = cell.x
        xh = cell.x + cell.width
        yl = cell.y
        yh = cell.y + cell.height(core.row_height)
        ix_lo = int(np.clip((xl - core.xl) // bw, 0, bins_x - 1))
        ix_hi = int(np.clip((xh - core.xl) // bw, 0, bins_x - 1))
        iy_lo = int(np.clip((yl - core.yl) // bh, 0, bins_y - 1))
        iy_hi = int(np.clip((yh - core.yl) // bh, 0, bins_y - 1))
        for iy in range(iy_lo, iy_hi + 1):
            by_lo = core.yl + iy * bh
            oy = max(0.0, min(yh, by_lo + bh) - max(yl, by_lo))
            for ix in range(ix_lo, ix_hi + 1):
                bx_lo = core.xl + ix * bw
                ox = max(0.0, min(xh, bx_lo + bw) - max(xl, bx_lo))
                grid[iy, ix] += ox * oy
    grid /= bw * bh
    return grid


def row_utilizations(design: Design) -> List[float]:
    """Occupied width fraction of every row at current positions."""
    core = design.core
    used = [0.0] * core.num_rows
    for cell in design.movable_cells:
        row_lo = max(0, int(round((cell.y - core.yl) / core.row_height)))
        for r in range(row_lo, min(row_lo + cell.height_rows, core.num_rows)):
            used[r] += cell.width
    return [u / core.width for u in used]
