"""Placement quality metrics: displacement, HPWL, density."""

from repro.metrics.density import density_map, global_density, row_utilizations
from repro.metrics.displacement import (
    DisplacementStats,
    displacement_stats,
    per_cell_displacements,
    quadratic_objective,
)
from repro.metrics.hpwl import WirelengthStats, gp_hpwl, total_hpwl, wirelength_stats
from repro.metrics.report import QualityReport, quality_report

__all__ = [
    "DisplacementStats",
    "displacement_stats",
    "per_cell_displacements",
    "quadratic_objective",
    "WirelengthStats",
    "wirelength_stats",
    "quality_report",
    "QualityReport",
    "total_hpwl",
    "gp_hpwl",
    "global_density",
    "density_map",
    "row_utilizations",
]
