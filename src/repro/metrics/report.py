"""Consolidated placement quality report.

One call — :func:`quality_report` — gathers everything a flow script or a
sign-off check wants to know about a placement: legality (via the
independent checker), displacement statistics, wirelength, density and
row-utilization spread.  Rendered by ``format()`` for humans and exposed as
a dict for machines (the CLI's ``check --full`` uses both).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.legality.checker import check_legality
from repro.legality.violations import LegalityReport
from repro.metrics.density import global_density, row_utilizations
from repro.metrics.displacement import DisplacementStats, displacement_stats
from repro.metrics.hpwl import WirelengthStats, wirelength_stats
from repro.netlist.design import Design


@dataclass
class QualityReport:
    """Everything measured by :func:`quality_report`."""

    design_name: str
    num_cells: int
    legality: LegalityReport
    displacement: DisplacementStats
    wirelength: Optional[WirelengthStats]
    density: float
    max_row_utilization: float
    mean_row_utilization: float

    @property
    def is_legal(self) -> bool:
        return self.legality.is_legal

    def as_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "design": self.design_name,
            "num_cells": self.num_cells,
            "legal": self.is_legal,
            "num_violations": len(self.legality.violations),
            "disp_total_sites": self.displacement.total_manhattan_sites,
            "disp_max": self.displacement.max_manhattan,
            "disp_mean": self.displacement.mean_manhattan,
            "disp_quadratic": self.displacement.total_quadratic,
            "density": self.density,
            "row_util_max": self.max_row_utilization,
            "row_util_mean": self.mean_row_utilization,
        }
        if self.wirelength is not None:
            data["hpwl"] = self.wirelength.legal_hpwl
            data["gp_hpwl"] = self.wirelength.gp_hpwl
            data["delta_hpwl_percent"] = self.wirelength.delta_hpwl_percent
        return data

    def format(self) -> str:
        lines = [
            f"quality report: {self.design_name} ({self.num_cells} cells)",
            f"  legality     : {self.legality.summary()}",
            f"  displacement : total {self.displacement.total_manhattan_sites:.1f} sites, "
            f"max {self.displacement.max_manhattan:.2f}, "
            f"mean {self.displacement.mean_manhattan:.3f}",
            f"  density      : {self.density:.3f} "
            f"(row util max {self.max_row_utilization:.2f}, "
            f"mean {self.mean_row_utilization:.2f})",
        ]
        if self.wirelength is not None:
            lines.append(
                f"  wirelength   : {self.wirelength.legal_hpwl:.5g} "
                f"(ΔHPWL {self.wirelength.delta_hpwl_percent:+.2f}%)"
            )
        return "\n".join(lines) + "\n"


def quality_report(design: Design, check_sites: bool = True) -> QualityReport:
    """Measure a design's quality in one pass."""
    utils = row_utilizations(design)
    return QualityReport(
        design_name=design.name,
        num_cells=len(design.movable_cells),
        legality=check_legality(design, check_sites=check_sites),
        displacement=displacement_stats(design),
        wirelength=wirelength_stats(design) if design.nets else None,
        density=global_density(design),
        max_row_utilization=max(utils) if utils else 0.0,
        mean_row_utilization=sum(utils) / len(utils) if utils else 0.0,
    )
