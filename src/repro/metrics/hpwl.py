"""Wirelength metrics: HPWL and the paper's ΔHPWL.

Table 2 reports "ΔHPWL": the relative HPWL increase of the legalized
placement over the global placement, e.g. 0.51% for fft_2.  We compute it as
``(HPWL_legal − HPWL_gp) / HPWL_gp``; a good legalizer keeps it tiny because
it moves cells little and coherently.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist.design import Design


@dataclass(frozen=True)
class WirelengthStats:
    """HPWL before/after legalization."""

    gp_hpwl: float
    legal_hpwl: float

    @property
    def delta_hpwl(self) -> float:
        """Relative HPWL increase (the paper's ΔHPWL, as a fraction)."""
        if self.gp_hpwl == 0.0:
            return 0.0
        return (self.legal_hpwl - self.gp_hpwl) / self.gp_hpwl

    @property
    def delta_hpwl_percent(self) -> float:
        return 100.0 * self.delta_hpwl

    def __str__(self) -> str:
        return (
            f"hpwl(gp={self.gp_hpwl:.4g}, legal={self.legal_hpwl:.4g}, "
            f"Δ={self.delta_hpwl_percent:+.2f}%)"
        )


def total_hpwl(design: Design) -> float:
    """HPWL of all nets at the current cell positions."""
    return sum(net.hpwl() for net in design.nets)


def gp_hpwl(design: Design) -> float:
    """HPWL of all nets at the global-placement positions."""
    return sum(net.gp_hpwl() for net in design.nets)


def wirelength_stats(design: Design) -> WirelengthStats:
    return WirelengthStats(gp_hpwl=gp_hpwl(design), legal_hpwl=total_hpwl(design))
