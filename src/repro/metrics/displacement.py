"""Displacement metrics.

The paper reports total Manhattan displacement measured in *placement site
widths* (Table 2, "Total Disp. (sites)"), while the legalization objective
itself is the *quadratic* Euclidean displacement (Problem (1)).  Both are
provided, plus max/mean statistics useful for debugging outliers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.netlist.design import Design


@dataclass(frozen=True)
class DisplacementStats:
    """Aggregate displacement of all movable cells."""

    total_manhattan: float        # database units
    total_manhattan_sites: float  # site widths (the paper's unit)
    total_quadratic: float        # the QP objective Σ (Δx² + Δy²)
    max_manhattan: float
    mean_manhattan: float
    num_cells: int

    def __str__(self) -> str:
        return (
            f"disp(total={self.total_manhattan_sites:.1f} sites, "
            f"max={self.max_manhattan:.3g}, mean={self.mean_manhattan:.3g}, "
            f"quad={self.total_quadratic:.4g})"
        )


def displacement_stats(design: Design) -> DisplacementStats:
    """Compute displacement statistics for a design's movable cells."""
    site_w = design.core.site_width
    total = 0.0
    total_sq = 0.0
    worst = 0.0
    cells = design.movable_cells
    for cell in cells:
        d = cell.displacement()
        total += d
        total_sq += cell.displacement_sq()
        if d > worst:
            worst = d
    n = len(cells)
    return DisplacementStats(
        total_manhattan=total,
        total_manhattan_sites=total / site_w,
        total_quadratic=total_sq,
        max_manhattan=worst,
        mean_manhattan=total / n if n else 0.0,
        num_cells=n,
    )


def per_cell_displacements(design: Design) -> List[float]:
    """Manhattan displacement per movable cell (for histograms/plots)."""
    return [cell.displacement() for cell in design.movable_cells]


def quadratic_objective(design: Design) -> float:
    """The paper's Problem (1) objective: Σ (x−x′)² + (y−y′)²."""
    return sum(cell.displacement_sq() for cell in design.movable_cells)
