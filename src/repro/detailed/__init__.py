"""Detailed placement: legality-preserving HPWL refinement after
legalization (the third stage of the paper's placement flow)."""

from repro.detailed.mover import DetailedPlacementResult, DetailedPlacer

__all__ = ["DetailedPlacer", "DetailedPlacementResult"]
