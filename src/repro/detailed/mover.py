"""Detailed placement: legality-preserving HPWL refinement.

The paper situates legalization between global placement and *detailed
placement*, "refines the placement solution" (Section 1), and its related
work [12] (MrDP) builds exactly such a refiner on top of this legalizer.
This module provides that third stage:

:class:`DetailedPlacer` runs *global move* passes: each movable cell is
attracted to the median of its connected nets' bounding boxes (the
classical optimal-region argument: HPWL as a function of one cell's
position is piecewise linear and minimized at the median of the other
pins' spans), and is relocated to the best free, rail-correct, site-aligned
position near that optimum — but only when the move strictly reduces total
HPWL.  Legality is maintained transactionally through a
:class:`~repro.rows.SiteMap`, so the output is legal whenever the input is.

Multi-row cells move too (their candidate rows are rail-filtered); fixed
cells never move.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.netlist.cell import CellInstance
from repro.netlist.design import Design
from repro.netlist.net import Net
from repro.rows.sitemap import SiteMap
from repro.utils.timer import StageTimer


@dataclass
class DetailedPlacementResult:
    """Outcome of a refinement run."""

    hpwl_before: float
    hpwl_after: float
    moves_accepted: int
    moves_tried: int
    passes: int
    runtime: float = 0.0
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def improvement(self) -> float:
        """Relative HPWL reduction (0.03 = 3% better)."""
        if self.hpwl_before == 0:
            return 0.0
        return (self.hpwl_before - self.hpwl_after) / self.hpwl_before

    def summary(self) -> str:
        return (
            f"detailed placement: HPWL {self.hpwl_before:.4g} -> "
            f"{self.hpwl_after:.4g} ({100 * self.improvement:.2f}% better), "
            f"{self.moves_accepted}/{self.moves_tried} moves in "
            f"{self.passes} passes"
        )


class DetailedPlacer:
    """Global-move detailed placement on a legal design.

    Parameters
    ----------
    passes:
        Number of sweeps over all cells (diminishing returns after 2-3).
    row_window:
        Candidate rows considered around the optimal row.
    site_window:
        Maximum |x| relocation in sites per move (bounds disruption and
        keeps each HPWL delta computation local).
    min_gain:
        Smallest absolute HPWL gain worth committing (filters churn).
    """

    def __init__(
        self,
        passes: int = 2,
        row_window: int = 3,
        site_window: int = 64,
        min_gain: float = 1e-9,
    ) -> None:
        self.passes = passes
        self.row_window = row_window
        self.site_window = site_window
        self.min_gain = min_gain

    # ------------------------------------------------------------------
    def refine(self, design: Design) -> DetailedPlacementResult:
        timer = StageTimer()
        with timer.stage("setup"):
            site_map = self._build_site_map(design)
            nets_of: Dict[int, List[Net]] = {c.id: [] for c in design.cells}
            for net in design.nets:
                for pin in net.pins:
                    if pin.cell is not None:
                        nets_of[pin.cell.id].append(net)

        hpwl_before = design.total_hpwl()
        tried = accepted = 0
        with timer.stage("moves"):
            for _ in range(self.passes):
                pass_accepted = 0
                for cell in design.movable_cells:
                    if not nets_of[cell.id]:
                        continue
                    tried += 1
                    if self._try_move(cell, design, site_map, nets_of[cell.id]):
                        accepted += 1
                        pass_accepted += 1
                if pass_accepted == 0:
                    break
        return DetailedPlacementResult(
            hpwl_before=hpwl_before,
            hpwl_after=design.total_hpwl(),
            moves_accepted=accepted,
            moves_tried=tried,
            passes=self.passes,
            runtime=timer.total(),
            stage_seconds=timer.as_dict(),
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _build_site_map(design: Design) -> SiteMap:
        core = design.core
        site_map = SiteMap(core)
        for cell in design.cells:
            row = cell.row_index
            if row is None:
                row = core.row_of_y(cell.y)
                cell.row_index = row
            site = int(round((cell.x - core.xl) / core.site_width))
            site_map.occupy_cell(cell, row, site)
        return site_map

    def _try_move(
        self,
        cell: CellInstance,
        design: Design,
        site_map: SiteMap,
        nets: List[Net],
    ) -> bool:
        core = design.core
        opt_x, opt_y = self._optimal_position(cell, nets, design)
        base_hpwl = sum(net.hpwl() for net in nets)

        old_row = cell.row_index
        old_site = int(round((cell.x - core.xl) / core.site_width))
        old_x, old_y = cell.x, cell.y
        # Free the cell's own footprint so nearby positions are visible.
        site_map.release_cell(cell, old_row, old_site)

        best: Optional[Tuple[float, int, int]] = None  # (gain, row, site)
        home = core.row_of_y(opt_y)
        max_bottom = core.num_rows - cell.height_rows
        for d_row in range(0, self.row_window + 1):
            for row in {home - d_row, home + d_row}:
                if not 0 <= row <= max_bottom:
                    continue
                if not core.rails.row_is_correct(cell.master, row):
                    continue
                site = site_map.nearest_fit_in_row(
                    row, opt_x, cell.width, cell.height_rows
                )
                if site is None:
                    continue
                if abs(site_map.site_to_x(site) - old_x) > self.site_window * core.site_width:
                    continue
                cell.x = site_map.site_to_x(site)
                cell.y = core.row_y(row)
                gain = base_hpwl - sum(net.hpwl() for net in nets)
                if gain > self.min_gain and (best is None or gain > best[0]):
                    best = (gain, row, site)
        # Restore, then commit the best candidate (if any).
        cell.x, cell.y = old_x, old_y
        if best is None:
            site_map.occupy_cell(cell, old_row, old_site)
            return False
        _, row, site = best
        cell.x = site_map.site_to_x(site)
        cell.y = core.row_y(row)
        cell.row_index = row
        if cell.master.bottom_rail is not None and not cell.master.is_even_height:
            cell.flipped = core.rails.needs_flip(cell.master, row)
        site_map.occupy_cell(cell, row, site)
        return True

    @staticmethod
    def _optimal_position(
        cell: CellInstance, nets: List[Net], design: Design
    ) -> Tuple[float, float]:
        """Median of the other pins' bounding-box edges (optimal region)."""
        xs: List[float] = []
        ys: List[float] = []
        for net in nets:
            lo_x = lo_y = float("inf")
            hi_x = hi_y = float("-inf")
            for pin in net.pins:
                if pin.cell is cell:
                    continue
                px, py = pin.position()
                lo_x, hi_x = min(lo_x, px), max(hi_x, px)
                lo_y, hi_y = min(lo_y, py), max(hi_y, py)
            if lo_x <= hi_x:
                xs.extend((lo_x, hi_x))
                ys.extend((lo_y, hi_y))
        if not xs:
            return cell.x, cell.y
        xs.sort()
        ys.sort()
        mid = len(xs) // 2
        med_x = xs[mid] if len(xs) % 2 else 0.5 * (xs[mid - 1] + xs[mid])
        med_y = ys[mid] if len(ys) % 2 else 0.5 * (ys[mid - 1] + ys[mid])
        # Optimal region targets the cell's pin; approximate with its center.
        return med_x - 0.5 * cell.width, med_y - 0.5 * cell.height(
            design.core.row_height
        )
