"""Primal active-set method for convex QPs.

An independent, dense reference solver (Nocedal & Wright, Algorithm 16.3)
used to *certify* MMSIM optimality on small instances: the MMSIM result and
this solver must agree on the optimal objective.  Solves

    min ½ xᵀ H x + pᵀ x    s.t.    G x >= g

from a feasible start point.  The legalization QP's bound ``x >= 0`` is
passed as extra identity rows of G by :func:`solve_qp_active_set`.

This implementation is O(n³) per iteration and intended for n up to a few
hundred — exactly the regime of test oracles, not the production MMSIM path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from repro.qp.problem import QPProblem


@dataclass
class ActiveSetResult:
    """Solution of the active-set method."""

    x: np.ndarray
    objective: float
    iterations: int
    converged: bool
    active_set: List[int]
    multipliers: np.ndarray  # one per row of G (zero for inactive rows)


def _solve_eqp(
    H: np.ndarray, grad: np.ndarray, G_active: np.ndarray
) -> tuple:
    """Equality-constrained QP step: min ½pᵀHp + gradᵀp s.t. G_active p = 0.

    Solved via the dense KKT system with least-squares fallback for
    degenerate working sets.  Returns (p, lambdas).
    """
    n = H.shape[0]
    k = G_active.shape[0]
    if k == 0:
        p = np.linalg.solve(H, -grad)
        return p, np.zeros(0)
    kkt = np.zeros((n + k, n + k))
    kkt[:n, :n] = H
    kkt[:n, n:] = -G_active.T
    kkt[n:, :n] = G_active
    rhs = np.concatenate([-grad, np.zeros(k)])
    try:
        sol = np.linalg.solve(kkt, rhs)
    except np.linalg.LinAlgError:
        sol = np.linalg.lstsq(kkt, rhs, rcond=None)[0]
    return sol[:n], sol[n:]


def active_set_solve(
    H: np.ndarray,
    p: np.ndarray,
    G: np.ndarray,
    g: np.ndarray,
    x0: np.ndarray,
    max_iterations: int = 10000,
    tol: float = 1e-9,
) -> ActiveSetResult:
    """Run the primal active-set method from a feasible x0."""
    H = np.asarray(H, dtype=float)
    p = np.asarray(p, dtype=float).ravel()
    G = np.asarray(G, dtype=float)
    g = np.asarray(g, dtype=float).ravel()
    x = np.asarray(x0, dtype=float).copy()
    m = G.shape[0]
    if np.any(G @ x < g - 1e-7):
        raise ValueError("active_set_solve requires a feasible start point")

    working: List[int] = [
        i for i in range(m) if abs(G[i] @ x - g[i]) <= tol
    ]
    lambdas_full = np.zeros(m)
    converged = False
    iterations = 0
    for it in range(1, max_iterations + 1):
        iterations = it
        grad = H @ x + p
        G_active = G[working] if working else np.zeros((0, x.size))
        step, lambdas = _solve_eqp(H, grad, G_active)
        if np.linalg.norm(step, ord=np.inf) <= tol:
            # Stationary on the working set: check multiplier signs.
            lambdas_full[:] = 0.0
            for idx, lam in zip(working, lambdas):
                lambdas_full[idx] = lam
            if not working or np.all(lambdas >= -tol):
                converged = True
                break
            drop = working[int(np.argmin(lambdas))]
            working.remove(drop)
            continue
        # Line search toward the constrained Newton step.
        alpha = 1.0
        blocking = -1
        Gp = G @ step
        Gx = G @ x
        for i in range(m):
            if i in working or Gp[i] >= -tol:
                continue
            limit = (g[i] - Gx[i]) / Gp[i]
            if limit < alpha:
                alpha = max(limit, 0.0)
                blocking = i
        x = x + alpha * step
        if blocking >= 0:
            working.append(blocking)
    return ActiveSetResult(
        x=x,
        objective=float(0.5 * x @ (H @ x) + p @ x),
        iterations=iterations,
        converged=converged,
        active_set=sorted(working),
        multipliers=lambdas_full,
    )


def solve_qp_active_set(
    qp: QPProblem, x0: Optional[np.ndarray] = None
) -> ActiveSetResult:
    """Solve a :class:`QPProblem` (with its x >= 0 bound) by active set.

    When ``x0`` is omitted, a feasible point is constructed by left-packing:
    the QP's constraint structure (chains ``x_j − x_l >= w_l`` plus
    ``x >= 0``) always admits the point obtained by topologically walking
    each chain and stacking from 0 — see :func:`feasible_left_packing`.
    """
    n = qp.num_variables
    H = qp.H.toarray() if sp.issparse(qp.H) else np.asarray(qp.H)
    B = qp.B.toarray() if sp.issparse(qp.B) else np.asarray(qp.B)
    G = np.vstack([B, np.eye(n)]) if qp.num_constraints else np.eye(n)
    g = np.concatenate([qp.b, np.zeros(n)]) if qp.num_constraints else np.zeros(n)
    if x0 is None:
        x0 = feasible_left_packing(qp)
    return active_set_solve(H, qp.p, G, g, x0)


def feasible_left_packing(qp: QPProblem) -> np.ndarray:
    """A feasible point for chain-structured legalization QPs.

    Treat each constraint row ``x_j − x_l >= b_k`` as a precedence edge
    l → j and propagate longest-path distances from 0.  Works for any DAG
    of difference constraints with non-negative offsets (which row-ordered
    legalization always produces).
    """
    n = qp.num_variables
    B = sp.csr_matrix(qp.B)
    edges = []
    for k in range(B.shape[0]):
        row = B.getrow(k)
        cols = row.indices
        vals = row.data
        if len(cols) != 2:
            raise ValueError("left packing expects two-term difference rows")
        j = cols[np.argmax(vals)]   # +1 coefficient
        l = cols[np.argmin(vals)]   # -1 coefficient
        edges.append((l, j, qp.b[k]))
    x = np.zeros(n)
    # Bellman-Ford style relaxation; chains are short so few passes suffice.
    for _ in range(n):
        changed = False
        for l, j, w in edges:
            if x[j] < x[l] + w - 1e-15:
                x[j] = x[l] + w
                changed = True
        if not changed:
            break
    return x
