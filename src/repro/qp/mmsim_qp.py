"""Generic QP solving via the paper's LCP + MMSIM pipeline.

The paper's concluding claim is that its formulation "provides new generic
solutions ... for various optimization problems that require solving
large-scale quadratic programs efficiently".  This module delivers that as
a reusable API: ``solve_qp_via_mmsim`` accepts *any* convex QP of the form

    min ½ xᵀ H x + pᵀ x    s.t.    B x >= b,  x >= 0

with sparse SPD ``H`` and full-row-rank ``B``, converts it to the KKT LCP
(Eq. 8/15), builds the block splitting of Eq. (16) — using a sparse LU of
``H`` when no low-rank ``(E, λ)`` structure is available for the Woodbury
shortcut — and runs the MMSIM.

This is the entry point a user would reach for to apply the paper's method
to the other applications it cites (global placement spreading, buffer/wire
sizing, dummy fill, ...).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.core.splitting import LegalizationSplitting, SplittingParameters
from repro.lcp.mmsim import MMSIMOptions, mmsim_solve
from repro.lcp.problem import split_kkt_solution
from repro.qp.problem import QPProblem
from repro.telemetry import current_session, current_tracer


class GeneralSplitting(LegalizationSplitting):
    """Eq. (16) splitting for an arbitrary sparse SPD Hessian.

    Identical block structure to :class:`LegalizationSplitting`, but H⁻¹
    columns needed for the tridiagonal Schur approximation come from a
    sparse LU factorization instead of the legalization-specific Woodbury
    identity.  Still never forms the full Schur complement: only the
    three diagonals of ``B H⁻¹ Bᵀ`` are assembled, via one solve per
    constraint-row support.
    """

    def __init__(
        self,
        H: sp.spmatrix,
        B: sp.spmatrix,
        params: Optional[SplittingParameters] = None,
        fast_kernels: bool = True,
    ) -> None:
        self.params = params or SplittingParameters()
        self.H = sp.csr_matrix(H)
        self.B = sp.csr_matrix(B)
        # No (E, λ) structure: the shared solver setup then keeps SuperLU
        # for the top block but still gets the banded bottom solve and the
        # fused sweep.
        self.E = None
        self.lam = None
        self.n = self.H.shape[0]
        self.m = self.B.shape[0]
        tracer = current_tracer()
        with tracer.span("splitting.factorize_H", nnz=int(self.H.nnz)):
            self._solve_H = spla.factorized(sp.csc_matrix(self.H))
        self.H_inv = None  # not formed explicitly
        with tracer.span("splitting.schur", m=self.m):
            self.D = self._schur_tridiagonal_via_solves()
        self._setup_solvers(fast_kernels)

    def _schur_tridiagonal_via_solves(self) -> sp.csr_matrix:
        """tridiag(B H⁻¹ Bᵀ) using one H-solve per B row.

        ``(B H⁻¹ Bᵀ)[i, j] = B_i · H⁻¹ B_jᵀ``; solving ``H y_i = B_iᵀ``
        once per row i gives row i of the product, from which the three
        diagonals are read off.
        """
        m = self.m
        if m == 0:
            return sp.csr_matrix((0, 0))
        Bt = self.B.T.tocsc()
        diag_main = np.zeros(m)
        diag_up = np.zeros(max(m - 1, 0))
        diag_lo = np.zeros(max(m - 1, 0))
        y_prev: Optional[np.ndarray] = None
        rows = [self.B.getrow(i) for i in range(m)]
        for i in range(m):
            rhs = np.asarray(Bt[:, i].todense()).ravel()
            y = self._solve_H(rhs)
            diag_main[i] = float((rows[i] @ y)[0])
            if i > 0:
                diag_lo[i - 1] = float((rows[i] @ y_prev)[0])
                diag_up[i - 1] = float((rows[i - 1] @ y)[0])
            y_prev = y
        if m == 1:
            return sp.csr_matrix(np.array([[diag_main[0]]]))
        return sp.diags(
            [diag_lo, diag_main, diag_up], offsets=[-1, 0, 1], format="csr"
        )

    # estimate_mu_max in the base class uses self.H_inv; override with the
    # factorized solve.
    def estimate_mu_max(self, iterations: int = 80, seed: int = 7) -> float:
        if self.m == 0:
            return 0.0
        solve_D = spla.factorized(sp.csc_matrix(self.D))
        rng = np.random.default_rng(seed)
        v = rng.standard_normal(self.m)
        v /= np.linalg.norm(v)
        mu = 0.0
        for _ in range(iterations):
            w = solve_D(self.B @ self._solve_H(self.B.T @ v))
            norm = np.linalg.norm(w)
            if norm == 0.0:
                return 0.0
            mu = norm
            v = w / norm
        return float(mu)


@dataclass
class MMSIMQPResult:
    """Solution of a QP via the MMSIM pipeline."""

    x: np.ndarray
    multipliers: np.ndarray
    objective: float
    converged: bool
    iterations: int
    lcp_residual: float
    kkt_residual: float


def solve_qp_via_mmsim(
    qp: QPProblem,
    E: Optional[sp.spmatrix] = None,
    lam: Optional[float] = None,
    params: Optional[SplittingParameters] = None,
    options: Optional[MMSIMOptions] = None,
    x0: Optional[np.ndarray] = None,
) -> MMSIMQPResult:
    """Solve ``min ½xᵀHx + pᵀx s.t. Bx >= b, x >= 0`` by KKT-LCP + MMSIM.

    Pass ``(E, lam)`` when ``H = I + λEᵀE`` (the legalization structure) to
    use the exact Woodbury inverse; otherwise a sparse LU of H drives the
    Schur-complement approximation.

    ``x0`` warm-starts the modulus iteration at a primal guess.
    """
    opts = options or MMSIMOptions(tol=1e-8, residual_tol=1e-6)
    tel = current_session()
    if opts.telemetry is None and tel.enabled:
        # Thread the ambient event sink through without mutating the
        # caller's options object.
        opts = dataclasses.replace(opts, telemetry=tel.solver_events)
    tracer = tel.tracer
    with tracer.span(
        "qp.solve_via_mmsim", n=qp.num_variables, m=qp.num_constraints
    ) as span:
        tel.metrics.gauge("qp.variables").set(qp.num_variables)
        tel.metrics.gauge("qp.constraints").set(qp.num_constraints)
        if E is not None and lam is not None:
            splitting = LegalizationSplitting(qp.H, qp.B, E, lam, params)
        else:
            splitting = GeneralSplitting(qp.H, qp.B, params)
        lcp = qp.kkt_lcp()
        s0 = None
        if x0 is not None:
            x0 = np.maximum(np.asarray(x0, dtype=float).ravel(), 0.0)
            s0 = np.zeros(qp.num_variables + qp.num_constraints)
            s0[: qp.num_variables] = 0.5 * opts.gamma * x0
        result = mmsim_solve(lcp, splitting, opts, s0=s0)
        x, r = split_kkt_solution(result.z, qp.num_variables)
        span.set_attributes(
            iterations=result.iterations, converged=result.converged
        )
    return MMSIMQPResult(
        x=x,
        multipliers=r,
        objective=qp.objective(x),
        converged=result.converged,
        iterations=result.iterations,
        lcp_residual=result.residual,
        kkt_residual=qp.kkt_residual(x, r),
    )
