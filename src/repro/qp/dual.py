"""Dual (Schur-complement) LCP of the legalization QP.

Eliminating the primal variables from the KKT system of

    min ½xᵀHx + pᵀx   s.t.   Bx >= b

(*without* the ``x >= 0`` bound) gives ``x(r) = H⁻¹(Bᵀr − p)`` and the
*dual LCP* in the multipliers r:

    v = Ã r + q̃ >= 0,  r >= 0,  rᵀ v = 0,
    Ã = B H⁻¹ Bᵀ,      q̃ = −B H⁻¹ p − b.

Ã is symmetric positive definite whenever H is SPD and B has full row rank,
so classical positive-diagonal LCP solvers (PSOR, projected fixed point)
apply — which is how the ablation benchmarks compare them against the
paper's MMSIM.  The dropped ``x >= 0`` bound is immaterial for legalization
inputs whose GP positions sit inside the core, and every use of this module
verifies the recovered x for non-negativity.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.lcp.problem import LCP
from repro.qp.problem import QPProblem


def make_dual_lcp(qp: QPProblem) -> Tuple[LCP, Callable[[np.ndarray], np.ndarray]]:
    """Build the dual LCP and a recovery map from multipliers to primal x.

    Returns ``(lcp, recover)`` where ``recover(r) = H⁻¹(Bᵀr − p)``.

    Note: Ã is formed explicitly, which densifies for large m; intended for
    tests and ablations on small/medium instances, not the production path.
    """
    H = sp.csc_matrix(qp.H)
    B = sp.csr_matrix(qp.B)
    solve_H = spla.factorized(H)

    # H⁻¹ Bᵀ column by column (m columns).  Fine for ablation sizes.
    Bt = B.T.toarray() if sp.issparse(B) else B.T
    HinvBt = np.column_stack([solve_H(Bt[:, j]) for j in range(Bt.shape[1])])
    A_dual = B @ HinvBt
    A_dual = np.asarray(A_dual)
    Hinv_p = solve_H(qp.p)
    q_dual = -(B @ Hinv_p) - qp.b

    lcp = LCP(A=sp.csr_matrix(A_dual), q=np.asarray(q_dual))

    def recover(r: np.ndarray) -> np.ndarray:
        r = np.asarray(r, dtype=float).ravel()
        return solve_H(B.T @ r - qp.p)

    return lcp, recover
