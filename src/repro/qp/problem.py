"""Convex quadratic program container.

The legalization relaxation (paper's Problem (6) / Problem (13)) is

    min ½ xᵀ H x + pᵀ x
    s.t. B x >= b,  x >= 0,

with ``H = Q + λ EᵀE`` symmetric positive definite and ``B`` of full row
rank.  :class:`QPProblem` stores this data (sparse), evaluates objectives
and feasibility, and converts to the KKT LCP of Eq. (8)/(15).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np
import scipy.sparse as sp

from repro.lcp.problem import LCP, make_kkt_lcp

Matrix = Union[np.ndarray, sp.spmatrix]


@dataclass
class QPProblem:
    """``min ½xᵀHx + pᵀx  s.t.  Bx >= b, x >= 0``."""

    H: sp.spmatrix
    p: np.ndarray
    B: sp.spmatrix
    b: np.ndarray

    def __post_init__(self) -> None:
        self.H = sp.csr_matrix(self.H)
        self.B = sp.csr_matrix(self.B)
        self.p = np.asarray(self.p, dtype=float).ravel()
        self.b = np.asarray(self.b, dtype=float).ravel()
        n = self.p.shape[0]
        m = self.b.shape[0]
        if self.H.shape != (n, n):
            raise ValueError(f"H shape {self.H.shape} != ({n},{n})")
        if self.B.shape != (m, n):
            raise ValueError(f"B shape {self.B.shape} != ({m},{n})")

    @property
    def num_variables(self) -> int:
        return self.p.shape[0]

    @property
    def num_constraints(self) -> int:
        return self.b.shape[0]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def objective(self, x: np.ndarray) -> float:
        """½xᵀHx + pᵀx."""
        x = np.asarray(x, dtype=float).ravel()
        return float(0.5 * x @ (self.H @ x) + self.p @ x)

    def constraint_violation(self, x: np.ndarray) -> float:
        """Largest violation of Bx >= b or x >= 0 (0 when feasible)."""
        x = np.asarray(x, dtype=float).ravel()
        viol = 0.0
        if self.num_constraints:
            viol = max(viol, float(np.max(self.b - self.B @ x)))
        if self.num_variables:
            viol = max(viol, float(np.max(-x)))
        return max(viol, 0.0)

    def is_feasible(self, x: np.ndarray, tol: float = 1e-6) -> bool:
        return self.constraint_violation(x) <= tol

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def kkt_lcp(self) -> LCP:
        """The paper's KKT LCP (Eq. 8 / Eq. 15) for this QP."""
        return make_kkt_lcp(self.H, self.p, self.B, self.b)

    def kkt_residual(self, x: np.ndarray, r: np.ndarray) -> float:
        """Max-norm violation of the KKT conditions (Eq. 7 / Eq. 14).

        Useful as an optimality certificate: zero iff (x, r) is a primal-dual
        optimal pair for the QP.
        """
        x = np.asarray(x, dtype=float).ravel()
        r = np.asarray(r, dtype=float).ravel()
        u = self.H @ x + self.p - self.B.T @ r
        v = self.B @ x - self.b
        res = 0.0
        res = max(res, float(np.max(-np.minimum(u, 0.0), initial=0.0)))
        res = max(res, float(np.max(-np.minimum(v, 0.0), initial=0.0)))
        res = max(res, float(np.max(-np.minimum(x, 0.0), initial=0.0)))
        res = max(res, float(np.max(-np.minimum(r, 0.0), initial=0.0)))
        res = max(res, abs(float(r @ v)))
        res = max(res, abs(float(u @ x)))
        return res
