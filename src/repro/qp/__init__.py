"""Convex QP containers and reference solvers (optimality oracles)."""

from repro.qp.active_set import (
    ActiveSetResult,
    active_set_solve,
    feasible_left_packing,
    solve_qp_active_set,
)
from repro.qp.dual import make_dual_lcp
from repro.qp.mmsim_qp import GeneralSplitting, MMSIMQPResult, solve_qp_via_mmsim
from repro.qp.problem import QPProblem
from repro.qp.reference import ReferenceResult, solve_reference

__all__ = [
    "QPProblem",
    "solve_qp_via_mmsim",
    "GeneralSplitting",
    "MMSIMQPResult",
    "make_dual_lcp",
    "active_set_solve",
    "solve_qp_active_set",
    "feasible_left_packing",
    "ActiveSetResult",
    "solve_reference",
    "ReferenceResult",
]
