"""Reference QP solving front-end.

``solve_reference`` picks an oracle appropriate to problem size:

* the dense active-set method for small instances (exact, finite),
* high-accuracy PSOR on the dual Schur-complement LCP for medium ones
  (requires the x >= 0 bound to be slack at the optimum, which it verifies).

Used in tests and the optimality-validation benchmark to certify that the
production MMSIM path reaches the true QP optimum (paper's Theorem 2 and
Section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.lcp.psor import PSOROptions, psor_solve
from repro.qp.active_set import solve_qp_active_set
from repro.qp.dual import make_dual_lcp
from repro.qp.problem import QPProblem

#: Above this variable count the dense active-set oracle is too slow.
ACTIVE_SET_LIMIT = 400


@dataclass
class ReferenceResult:
    """Certified reference solution of a legalization QP."""

    x: np.ndarray
    objective: float
    method: str
    converged: bool


def solve_reference(
    qp: QPProblem, method: Optional[str] = None, tol: float = 1e-9
) -> ReferenceResult:
    """Solve a legalization QP with an oracle independent of the MMSIM.

    ``method`` forces ``"active_set"`` or ``"dual_psor"``; by default the
    choice follows problem size.
    """
    if method is None:
        method = "active_set" if qp.num_variables <= ACTIVE_SET_LIMIT else "dual_psor"
    if method == "active_set":
        res = solve_qp_active_set(qp)
        return ReferenceResult(
            x=res.x,
            objective=res.objective,
            method="active_set",
            converged=res.converged,
        )
    if method == "dual_psor":
        lcp, recover = make_dual_lcp(qp)
        res = psor_solve(lcp, PSOROptions(relax=1.0, tol=tol, max_iterations=200000))
        x = recover(res.z)
        if np.any(x < -1e-6):
            raise RuntimeError(
                "dual_psor reference invalid: x >= 0 bound is active; "
                "use the active_set oracle for this instance"
            )
        return ReferenceResult(
            x=x,
            objective=qp.objective(x),
            method="dual_psor",
            converged=res.converged,
        )
    raise ValueError(f"unknown reference method {method!r}")
