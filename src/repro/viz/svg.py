"""Dependency-free SVG rendering of placements (the paper's Figure 5).

``render_svg(design)`` draws the core outline, rows, every cell (blue, the
paper's colour; double-height cells darker), and optionally a red
displacement segment from each cell's GP position to its legalized
position — exactly the visualization of Figure 5(a)/(b).

The output is a plain SVG string; ``save_svg`` writes it to a file.
"""

from __future__ import annotations

from typing import Optional

from repro.netlist.design import Design

CELL_FILL = "#4f81d6"
CELL_FILL_MULTI = "#2a5bb0"
CELL_STROKE = "#1d3c73"
DISP_COLOR = "#d62727"
ROW_COLOR = "#dddddd"
CORE_COLOR = "#333333"


def render_svg(
    design: Design,
    width_px: int = 900,
    show_displacement: bool = True,
    show_rows: bool = True,
    clip: Optional[tuple] = None,
) -> str:
    """Render the design to an SVG string.

    ``clip`` is an optional ``(xl, yl, xh, yh)`` window in design units for
    partial layouts (Figure 5(b)).
    """
    core = design.core
    xl, yl, xh, yh = clip if clip else (core.xl, core.yl, core.xh, core.yh)
    span_x = max(xh - xl, 1e-9)
    span_y = max(yh - yl, 1e-9)
    scale = width_px / span_x
    height_px = span_y * scale

    def sx(x: float) -> float:
        return (x - xl) * scale

    def sy(y: float) -> float:
        # SVG's y axis points down; designs' points up.
        return height_px - (y - yl) * scale

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width_px:.0f}" '
        f'height="{height_px:.0f}" viewBox="0 0 {width_px:.0f} {height_px:.0f}">',
        f'<rect x="0" y="0" width="{width_px:.0f}" height="{height_px:.0f}" '
        f'fill="white"/>',
    ]

    if show_rows:
        for r in range(core.num_rows + 1):
            y = core.yl + r * core.row_height
            if not yl <= y <= yh:
                continue
            parts.append(
                f'<line x1="0" y1="{sy(y):.2f}" x2="{width_px}" y2="{sy(y):.2f}" '
                f'stroke="{ROW_COLOR}" stroke-width="0.5"/>'
            )

    row_h = core.row_height
    for cell in design.cells:
        rect = cell.rect(row_h)
        if rect.xh < xl or rect.xl > xh or rect.yh < yl or rect.yl > yh:
            continue
        fill = CELL_FILL_MULTI if cell.height_rows > 1 else CELL_FILL
        if cell.fixed:
            fill = "#888888"
        parts.append(
            f'<rect x="{sx(rect.xl):.2f}" y="{sy(rect.yh):.2f}" '
            f'width="{rect.width * scale:.2f}" height="{rect.height * scale:.2f}" '
            f'fill="{fill}" stroke="{CELL_STROKE}" stroke-width="0.4"/>'
        )

    if show_displacement:
        for cell in design.movable_cells:
            if cell.displacement() == 0.0:
                continue
            x0, y0 = cell.gp_x, cell.gp_y
            x1, y1 = cell.x, cell.y
            if not (xl <= x0 <= xh or xl <= x1 <= xh):
                continue
            parts.append(
                f'<line x1="{sx(x0):.2f}" y1="{sy(y0):.2f}" '
                f'x2="{sx(x1):.2f}" y2="{sy(y1):.2f}" '
                f'stroke="{DISP_COLOR}" stroke-width="0.8" opacity="0.8"/>'
            )

    parts.append(
        f'<rect x="{sx(core.xl):.2f}" y="{sy(core.yh):.2f}" '
        f'width="{core.width * scale:.2f}" height="{core.height * scale:.2f}" '
        f'fill="none" stroke="{CORE_COLOR}" stroke-width="1"/>'
    )
    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(design: Design, path: str, **kwargs) -> str:
    """Render and write an SVG file; returns the path."""
    svg = render_svg(design, **kwargs)
    with open(path, "w") as fh:
        fh.write(svg)
    return path


def render_convergence_svg(
    history,
    width_px: int = 640,
    height_px: int = 360,
    title: str = "MMSIM convergence",
) -> str:
    """Render an iteration-vs-step curve (log y) as a standalone SVG.

    *history* is the ``residual_history`` of an :class:`LCPResult` run with
    ``record_history=True`` — the per-sweep ‖z⁽ᵏ⁾ − z⁽ᵏ⁻¹⁾‖∞ values.
    """
    import math

    values = [v for v in history if v > 0.0]
    if not values:
        values = [1.0]
    logs = [math.log10(v) for v in values]
    lo, hi = min(logs), max(logs)
    if hi - lo < 1e-12:
        hi = lo + 1.0
    margin = 42.0
    plot_w = width_px - 2 * margin
    plot_h = height_px - 2 * margin

    def px(i: int) -> float:
        return margin + plot_w * (i / max(len(logs) - 1, 1))

    def py(value: float) -> float:
        return margin + plot_h * (1.0 - (value - lo) / (hi - lo))

    points = " ".join(f"{px(i):.1f},{py(v):.1f}" for i, v in enumerate(logs))
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width_px}" '
        f'height="{height_px}" viewBox="0 0 {width_px} {height_px}">',
        f'<rect width="{width_px}" height="{height_px}" fill="white"/>',
        f'<text x="{width_px / 2:.0f}" y="20" text-anchor="middle" '
        f'font-family="sans-serif" font-size="14">{title}</text>',
        f'<rect x="{margin}" y="{margin}" width="{plot_w}" height="{plot_h}" '
        f'fill="none" stroke="#888" stroke-width="1"/>',
    ]
    # Decade gridlines.
    for decade in range(math.ceil(lo), math.floor(hi) + 1):
        y = py(decade)
        parts.append(
            f'<line x1="{margin}" y1="{y:.1f}" x2="{margin + plot_w}" '
            f'y2="{y:.1f}" stroke="#ddd" stroke-width="0.5"/>'
        )
        parts.append(
            f'<text x="{margin - 6}" y="{y + 4:.1f}" text-anchor="end" '
            f'font-family="sans-serif" font-size="10">1e{decade}</text>'
        )
    parts.append(
        f'<polyline points="{points}" fill="none" stroke="{CELL_FILL}" '
        f'stroke-width="1.5"/>'
    )
    parts.append(
        f'<text x="{width_px / 2:.0f}" y="{height_px - 8}" text-anchor="middle" '
        f'font-family="sans-serif" font-size="11">iteration '
        f'(n={len(history)})</text>'
    )
    parts.append("</svg>")
    return "\n".join(parts)
