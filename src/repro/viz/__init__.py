"""Placement visualization (SVG, no external dependencies)."""

from repro.viz.svg import render_convergence_svg, render_svg, save_svg

__all__ = ["render_svg", "save_svg", "render_convergence_svg"]
