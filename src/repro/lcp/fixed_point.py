"""Projected fixed-point (projected Jacobi / gradient) iteration for LCPs.

The second classical comparator from the paper's Section 2.2.  For an LCP
with symmetric positive definite A, the map

    z ← max(0, z − α (A z + q))

is a contraction for step sizes ``0 < α < 2 / λ_max(A)`` and converges to
the unique solution.  Much simpler than PSOR or MMSIM, and typically much
slower — which is the point of the ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.lcp.problem import LCP, LCPResult


@dataclass
class FixedPointOptions:
    step: Optional[float] = None     # None: auto 1/λ_max(A)
    tol: float = 1e-10
    max_iterations: int = 200000


def estimate_lambda_max(A: sp.spmatrix, iterations: int = 60) -> float:
    """Power iteration estimate of the largest eigenvalue magnitude."""
    n = A.shape[0]
    rng = np.random.default_rng(12345)
    v = rng.standard_normal(n)
    v /= np.linalg.norm(v)
    lam = 1.0
    for _ in range(iterations):
        w = A @ v
        norm = np.linalg.norm(w)
        if norm == 0.0:
            return 1.0
        lam = norm
        v = w / norm
    return float(lam)


def fixed_point_solve(
    lcp: LCP,
    options: Optional[FixedPointOptions] = None,
    z0: Optional[np.ndarray] = None,
) -> LCPResult:
    """Projected-gradient fixed-point iteration for an SPD LCP."""
    opts = options or FixedPointOptions()
    A = sp.csr_matrix(lcp.A)
    n = lcp.n
    step = opts.step
    if step is None:
        step = 1.0 / estimate_lambda_max(A)
    if step <= 0:
        raise ValueError("step must be positive")
    z = np.zeros(n) if z0 is None else np.maximum(np.asarray(z0, dtype=float), 0.0)
    q = lcp.q
    converged = False
    iterations = 0
    for k in range(1, opts.max_iterations + 1):
        iterations = k
        z_new = np.maximum(0.0, z - step * (A @ z + q))
        change = float(np.max(np.abs(z_new - z))) if n else 0.0
        z = z_new
        if change < opts.tol:
            converged = True
            break
    return LCPResult(
        z=z,
        converged=converged,
        iterations=iterations,
        residual=lcp.natural_residual(z),
        solver="fixed_point",
        message="" if converged else "max iterations reached",
    )
