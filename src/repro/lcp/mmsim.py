"""Modulus-based matrix splitting iteration method (MMSIM) for LCPs.

This is the paper's Algorithm 1 (originally Bai, 2010).  Let ``A = M − N``
be a splitting and ``Ω`` a positive diagonal matrix.  From any start vector
``s⁰``, iterate

    (M + Ω) s^{k+1} = N s^k + (Ω − A) |s^k| − γ q,            (Eq. 3)
    z^{k+1} = (|s^{k+1}| + s^{k+1}) / γ,                      (Eq. 4)

until ``‖z^k − z^{k-1}‖ < ε``.  At a fixed point, ``z = (|s|+s)/γ`` and
``w = Ω(|s|−s)/γ`` solve the LCP: non-negativity of both is automatic from
the modulus, and complementarity holds because ``(|s|+s)ᵀ(|s|−s) = 0``.

The solver is generic over a :class:`Splitting` strategy object so the same
iteration drives both the simple dense splittings used in unit tests and the
paper's block lower-triangular splitting of Eq. (16) (see
:mod:`repro.core.splitting`).
"""

from __future__ import annotations

import warnings
from collections import deque
from dataclasses import dataclass
from typing import Optional, Protocol

import numpy as np

from repro.lcp.problem import LCP, LCPResult


class Splitting(Protocol):
    """Strategy interface for one MMSIM splitting ``A = M − N`` with Ω."""

    def apply_N(self, s: np.ndarray) -> np.ndarray:
        """Return ``N s``."""
        ...

    def apply_omega_minus_A(self, s_abs: np.ndarray) -> np.ndarray:
        """Return ``(Ω − A) |s|``."""
        ...

    def solve_M_plus_omega(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``(M + Ω) s = rhs`` for s."""
        ...


# Splittings may additionally expose ``apply_rhs(s, s_abs, gq)`` returning
# ``N s + (Ω − A)|s| − gq`` in one fused pass (possibly into a reused
# buffer that the solver must consume before the next call).  When the
# attribute is present and not None the solver prefers it over the
# separate apply_N / apply_omega_minus_A calls; the two paths compute the
# same iterate (see tests/test_splitting.py kernel-parity tests).


@dataclass
class MMSIMOptions:
    """Iteration controls for :func:`mmsim_solve`.

    ``gamma`` is the paper's γ (any positive constant; 2 is customary).
    ``tol`` is ε applied to ``‖z^k − z^{k-1}‖_inf``; ``residual_tol``
    additionally requires the LCP natural residual to be small, which avoids
    declaring convergence on a slowly-moving but wrong iterate.

    ``check_every`` rate-limits the convergence test: the (residual-
    computing) check only runs on iterations divisible by it — and on the
    final iteration, so a run that converges between checkpoints is still
    detected at ``max_iterations``.  The default of 1 checks every sweep.

    ``damping`` relaxes the update to ``s ← ω·ŝ + (1−ω)·s`` (ω = 1 is the
    paper's plain iteration; the fixed points are identical for any
    ω ∈ (0, 1]).  With ``auto_damping`` (default), a stalled iteration —
    the z-step not shrinking over ``stall_window`` sweeps — multiplies ω
    by ``rescue_damping`` (0.7): the plain modulus iteration provably
    *can* enter a 2-cycle on valid mixed-height instances even inside the
    paper's parameter window, and damping reliably collapses the cycle
    onto the fixed point (see ``tests/test_mmsim_stall_rescue.py``).  If
    the iteration is *still* stalled a window later the rescue escalates
    (ω ← 0.7·ω, …) down to ``min_damping`` — some cycles survive ω = 0.7
    but collapse at 0.5 (found by fuzzing; see
    ``tests/test_mmsim_vs_lemke.py``).  A run that never stalls is
    bit-identical to the plain iteration.

    ``telemetry`` is an optional event sink (anything with an
    ``emit(solver, type, **fields)`` method, normally a
    :class:`repro.telemetry.EventSink`): when set, the solver emits one
    ``iteration`` event per sweep (z-step norm, damping ω, residual when
    computed), a ``stall_rescue`` event if the rescue fires, and a final
    ``done`` event.  When None (the default) the loop pays a single
    pointer comparison per sweep.

    ``record_history`` is *deprecated* — it grew an unbounded Python list
    inside the solver loop on long runs.  It still works (now backed by a
    bounded deque of the most recent ``history_limit`` steps) but warns;
    use ``telemetry`` instead.
    """

    gamma: float = 2.0
    tol: float = 1e-8
    residual_tol: Optional[float] = 1e-6
    max_iterations: int = 20000
    record_history: bool = False
    check_every: int = 1
    damping: float = 1.0
    auto_damping: bool = True
    stall_window: int = 500
    rescue_damping: float = 0.7
    min_damping: float = 0.2
    telemetry: Optional[object] = None
    history_limit: int = 50000

    def __post_init__(self) -> None:
        if self.gamma <= 0:
            raise ValueError("gamma must be positive")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if not 0.0 < self.damping <= 1.0:
            raise ValueError("damping must be in (0, 1]")
        if self.check_every < 1:
            raise ValueError("check_every must be >= 1")
        if not 0.0 < self.rescue_damping < 1.0:
            raise ValueError("rescue_damping must be in (0, 1)")
        if not 0.0 < self.min_damping <= 1.0:
            raise ValueError("min_damping must be in (0, 1]")
        if self.history_limit < 1:
            raise ValueError("history_limit must be >= 1")
        if self.record_history:
            warnings.warn(
                "MMSIMOptions.record_history is deprecated (it buffered an "
                "unbounded list inside the solver loop); pass a telemetry "
                "event sink instead, e.g. MMSIMOptions(telemetry="
                "repro.telemetry.EventSink()). The flag still works but "
                "keeps only the most recent history_limit steps.",
                DeprecationWarning,
                stacklevel=2,
            )


def warm_start_from_z(lcp: LCP, z0: np.ndarray, gamma: float) -> np.ndarray:
    """Modulus-space warm start s⁰ reproducing a previous solution z⁰.

    At a fixed point ``z = (|s|+s)/γ`` and ``w = (|s|−s)/γ`` (Ω = I), so
    ``s = γ(z − w)/2``.  Substituting ``w = max(Az⁰ + q, 0)`` (the
    complementary slack of the candidate) gives an s⁰ whose first iterate
    starts from z⁰ instead of from zero — when z⁰ is the solution of a
    nearby problem (a re-legalization, a λ-continuation step, a resilience
    re-solve) the iteration converges in a handful of sweeps.
    """
    w = np.maximum(lcp.w_of(z0), 0.0)
    s0 = z0 - w
    s0 *= 0.5 * gamma
    return s0


def mmsim_solve(
    lcp: LCP,
    splitting: Splitting,
    options: Optional[MMSIMOptions] = None,
    s0: Optional[np.ndarray] = None,
    z0: Optional[np.ndarray] = None,
) -> LCPResult:
    """Run the MMSIM on an LCP with the given splitting.

    ``s0`` seeds the modulus iteration directly; ``z0`` instead warm-starts
    from a previous *solution* via :func:`warm_start_from_z` (ignored when
    ``s0`` is given).  Returns an :class:`LCPResult` whose ``z`` satisfies
    the LCP to the requested tolerance when ``converged`` is True.
    """
    opts = options or MMSIMOptions()
    n = lcp.n
    gamma = opts.gamma
    if s0 is None and z0 is not None:
        z0 = np.asarray(z0, dtype=float)
        if z0.shape != (n,):
            raise ValueError(f"z0 has shape {z0.shape}, expected ({n},)")
        s0 = warm_start_from_z(lcp, z0, gamma)
    s = np.zeros(n) if s0 is None else np.asarray(s0, dtype=float).copy()
    if s.shape != (n,):
        raise ValueError(f"s0 has shape {s.shape}, expected ({n},)")

    # A splitting armed with a sweep-kernel runner (repro.kernels) takes
    # the blocked drive: K sweeps per Python-level step, convergence
    # checked only at block boundaries.  Per-step history recording is
    # incompatible with blocking, so record_history keeps the per-sweep
    # loop below.
    runner = getattr(splitting, "sweep_runner", None)
    if runner is not None and not opts.record_history:
        return _mmsim_solve_blocked(lcp, splitting, opts, s, runner)

    z_prev = (np.abs(s) + s) / gamma
    history = deque(maxlen=opts.history_limit) if opts.record_history else None
    emit = opts.telemetry.emit if opts.telemetry is not None else None
    fused = getattr(splitting, "apply_rhs", None)
    gq = gamma * lcp.q
    iterations = 0
    converged = False
    omega = opts.damping
    rescued = False
    checkpoint_step = None
    for k in range(1, opts.max_iterations + 1):
        iterations = k
        s_abs = np.abs(s)
        if fused is not None:
            rhs = fused(s, s_abs, gq)
        else:
            rhs = (
                splitting.apply_N(s)
                + splitting.apply_omega_minus_A(s_abs)
                - gq
            )
        s_hat = splitting.solve_M_plus_omega(rhs)
        s = s_hat if omega == 1.0 else omega * s_hat + (1.0 - omega) * s
        # z = (|s| + s)/γ and the inf-norm z-step, in place: the retired
        # z_prev buffer absorbs the difference, so the sweep allocates
        # only z itself.
        z = np.abs(s)
        z += s
        z /= gamma
        if n:
            np.subtract(z, z_prev, out=z_prev)
            np.abs(z_prev, out=z_prev)
            step = float(z_prev.max())
        else:
            step = 0.0
        if history is not None:
            history.append(step)
        z_prev = z
        # The convergence tail is duplicated so the no-sink path carries
        # zero event bookkeeping per sweep (not even a residual slot);
        # both branches apply the identical test.
        if emit is None:
            if step < opts.tol and (
                k % opts.check_every == 0 or k == opts.max_iterations
            ):
                if opts.residual_tol is None:
                    converged = True
                else:
                    converged = lcp.natural_residual(z) <= opts.residual_tol
        else:
            residual_k: Optional[float] = None
            if step < opts.tol and (
                k % opts.check_every == 0 or k == opts.max_iterations
            ):
                if opts.residual_tol is None:
                    converged = True
                else:
                    residual_k = lcp.natural_residual(z)
                    converged = residual_k <= opts.residual_tol
            emit(
                "mmsim", "iteration",
                iteration=k, step=step, omega=omega, residual=residual_k,
            )
        if converged:
            break
        # Stall rescue: a step that stopped shrinking signals the plain
        # iteration 2-cycling; damping collapses the cycle (fixed points
        # are unchanged by ω).  Still stalled a window later, the rescue
        # escalates ω further, down to min_damping.
        if (
            opts.auto_damping
            and omega > opts.min_damping
            and k % opts.stall_window == 0
        ):
            if checkpoint_step is not None and step >= 0.9 * checkpoint_step:
                omega = max(omega * opts.rescue_damping, opts.min_damping)
                rescued = True
                if emit is not None:
                    emit("mmsim", "stall_rescue", iteration=k, omega=omega)
            checkpoint_step = step
    residual = lcp.natural_residual(z_prev)
    message = "" if converged else "max iterations reached"
    if rescued:
        message = (message + f"; stall rescued with damping {omega:g}").lstrip(
            "; "
        )
    if emit is not None:
        emit(
            "mmsim", "done",
            iterations=iterations, converged=converged, residual=residual,
            rescued=rescued,
        )
    return LCPResult(
        z=z_prev,
        converged=converged,
        iterations=iterations,
        residual=residual,
        residual_history=list(history) if history is not None else [],
        solver="mmsim",
        message=message,
    )


def _mmsim_solve_blocked(
    lcp: LCP,
    splitting: Splitting,
    opts: MMSIMOptions,
    s: np.ndarray,
    runner,
) -> LCPResult:
    """Blocked MMSIM drive over an armed sweep-kernel runner.

    Runs ``L = max(check_every, runner.block)`` modulus sweeps per
    Python-level step: ``L−1`` blind sweeps through the runner, a
    recomputation of ``z`` at the penultimate iterate, then one measured
    sweep — so the convergence test at each block boundary sees a *true*
    single-iteration z-step of the same contraction, just sampled every L
    sweeps instead of every sweep.  Per-sweep arithmetic is identical to
    :func:`mmsim_solve` (the probe gate in :mod:`repro.kernels.registry`
    verified the runner against it); runs differ only in which iterate
    they stop at, which is why armed backends carry the "reordered"
    tolerance class.

    Two schedule refinements keep the blocked drive from wasting sweeps
    relative to the per-sweep loop:

    * the block length ramps geometrically (1, 2, 4, ... up to the
      runner's block) so problems that converge in a sweep or two are
      detected almost as fast as with ``check_every=1``, while long runs
      still amortize bookkeeping over full blocks;
    * while the stall rescue is eligible, block boundaries are clamped to
      land exactly on ``stall_window`` multiples, so the rescue samples
      its step checkpoints at the *same iterates* as the per-sweep loop
      and the ω escalation sequence (and hence the iterate trajectory)
      matches it exactly.

    Telemetry ``iteration`` events are emitted at block granularity.
    """
    n = lcp.n
    gamma = opts.gamma
    emit = opts.telemetry.emit if opts.telemetry is not None else None
    gq = gamma * lcp.q
    block = max(opts.check_every, runner.block)
    z_prev = (np.abs(s) + s) / gamma
    iterations = 0
    converged = False
    omega = opts.damping
    rescued = False
    checkpoint_step = None
    next_rescue = opts.stall_window
    ramp = 1
    k = 0
    while k < opts.max_iterations and not converged:
        span = min(
            max(opts.check_every, min(block, ramp)),
            opts.max_iterations - k,
        )
        ramp = min(ramp * 2, block)
        if opts.auto_damping and omega > opts.min_damping:
            # Align boundaries with the rescue schedule so checkpoints
            # are sampled at the same iterates as the per-sweep loop.
            span = max(1, min(span, next_rescue - k))
        if span > 1:
            s = runner.run(s, span - 1, gq, omega)
            z_prev = (np.abs(s) + s) / gamma
        s = runner.run(s, 1, gq, omega)
        k += span
        iterations = k
        z = np.abs(s)
        z += s
        z /= gamma
        if n:
            np.subtract(z, z_prev, out=z_prev)
            np.abs(z_prev, out=z_prev)
            step = float(z_prev.max())
        else:
            step = 0.0
        z_prev = z
        residual_k: Optional[float] = None
        if step < opts.tol:
            if opts.residual_tol is None:
                converged = True
            else:
                residual_k = lcp.natural_residual(z)
                converged = residual_k <= opts.residual_tol
        if emit is not None:
            emit(
                "mmsim", "iteration",
                iteration=k, step=step, omega=omega, residual=residual_k,
            )
        if converged:
            break
        if (
            opts.auto_damping
            and omega > opts.min_damping
            and k >= next_rescue
        ):
            if checkpoint_step is not None and step >= 0.9 * checkpoint_step:
                omega = max(omega * opts.rescue_damping, opts.min_damping)
                rescued = True
                if emit is not None:
                    emit("mmsim", "stall_rescue", iteration=k, omega=omega)
            checkpoint_step = step
            next_rescue = (k // opts.stall_window + 1) * opts.stall_window
    residual = lcp.natural_residual(z_prev)
    message = "" if converged else "max iterations reached"
    if rescued:
        message = (message + f"; stall rescued with damping {omega:g}").lstrip(
            "; "
        )
    if emit is not None:
        emit(
            "mmsim", "done",
            iterations=iterations, converged=converged, residual=residual,
            rescued=rescued,
        )
    return LCPResult(
        z=z_prev,
        converged=converged,
        iterations=iterations,
        residual=residual,
        residual_history=[],
        solver="mmsim",
        message=message,
    )
