"""Linear complementarity problems and solvers (MMSIM, PSOR, fixed-point)."""

from repro.lcp.fixed_point import FixedPointOptions, fixed_point_solve
from repro.lcp.lemke import LemkeOptions, lemke_solve
from repro.lcp.mmsim import MMSIMOptions, Splitting, mmsim_solve
from repro.lcp.problem import LCP, LCPResult, make_kkt_lcp, split_kkt_solution
from repro.lcp.psor import PSOROptions, psor_solve
from repro.lcp.splittings import (
    ExactSplitting,
    GaussSeidelSplitting,
    JacobiSplitting,
    SORSplitting,
)

__all__ = [
    "LCP",
    "LCPResult",
    "make_kkt_lcp",
    "split_kkt_solution",
    "mmsim_solve",
    "lemke_solve",
    "LemkeOptions",
    "MMSIMOptions",
    "Splitting",
    "psor_solve",
    "PSOROptions",
    "fixed_point_solve",
    "FixedPointOptions",
    "JacobiSplitting",
    "GaussSeidelSplitting",
    "SORSplitting",
    "ExactSplitting",
]
