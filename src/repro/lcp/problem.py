"""Linear complementarity problem (LCP) container and residuals.

Given a matrix ``A`` (n x n, typically sparse) and a vector ``q``, the
LCP(q, A) of the paper's Section 2.2 asks for vectors ``w, z`` with

    w = A z + q >= 0,    z >= 0,    zᵀ w = 0.

This module holds the problem data and provides the standard merit
quantities used as stopping criteria and as test oracles:

* the *natural residual* ``‖ min(z, Az + q) ‖`` — zero exactly at solutions;
* the feasibility violations ``‖ min(z, 0) ‖`` and ``‖ min(w, 0) ‖``;
* the complementarity gap ``zᵀ w``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np
import scipy.sparse as sp

Matrix = Union[np.ndarray, sp.spmatrix]


@dataclass
class LCP:
    """An LCP(q, A) instance."""

    A: Matrix
    q: np.ndarray

    def __post_init__(self) -> None:
        self.q = np.asarray(self.q, dtype=float).ravel()
        n = self.q.shape[0]
        if self.A.shape != (n, n):
            raise ValueError(f"A has shape {self.A.shape}, expected ({n}, {n})")

    @property
    def n(self) -> int:
        return self.q.shape[0]

    def w_of(self, z: np.ndarray) -> np.ndarray:
        """w = A z + q."""
        return self.A @ z + self.q

    # ------------------------------------------------------------------
    # Merit functions
    # ------------------------------------------------------------------
    def natural_residual(self, z: np.ndarray) -> float:
        """‖min(z, Az + q)‖_inf; zero iff z solves the LCP."""
        w = self.w_of(z)
        return float(np.max(np.abs(np.minimum(z, w)))) if self.n else 0.0

    def complementarity_gap(self, z: np.ndarray) -> float:
        """zᵀw (can be slightly negative for infeasible iterates)."""
        return float(z @ self.w_of(z))

    def infeasibility(self, z: np.ndarray) -> float:
        """Largest violation of z >= 0 or w >= 0."""
        w = self.w_of(z)
        viol_z = float(np.max(-np.minimum(z, 0.0))) if self.n else 0.0
        viol_w = float(np.max(-np.minimum(w, 0.0))) if self.n else 0.0
        return max(viol_z, viol_w)

    def is_solution(self, z: np.ndarray, tol: float = 1e-6) -> bool:
        """All three LCP conditions within *tol* (residual-based)."""
        return self.natural_residual(z) <= tol


@dataclass
class LCPResult:
    """Outcome of an iterative LCP solve."""

    z: np.ndarray
    converged: bool
    iterations: int
    residual: float
    residual_history: List[float] = field(default_factory=list)
    solver: str = ""
    message: str = ""

    def __str__(self) -> str:
        status = "converged" if self.converged else "NOT converged"
        return (
            f"LCPResult({self.solver}: {status} in {self.iterations} iters, "
            f"residual={self.residual:.3e})"
        )


def make_kkt_lcp(
    H: Matrix, p: np.ndarray, B: Matrix, b: np.ndarray
) -> LCP:
    """Build the paper's KKT LCP (Eq. 8 / Eq. 15).

    For the QP ``min ½xᵀHx + pᵀx s.t. Bx >= b, x >= 0`` the KKT system is
    the LCP with

        A = [[H, -Bᵀ], [B, 0]],   q = [p; -b],   z = [x; r].

    H must be symmetric positive definite and B of full row rank for the
    MMSIM convergence guarantee (Propositions 1-2 of the paper).
    """
    p = np.asarray(p, dtype=float).ravel()
    b = np.asarray(b, dtype=float).ravel()
    n = p.shape[0]
    m = b.shape[0]
    if H.shape != (n, n):
        raise ValueError(f"H has shape {H.shape}, expected ({n}, {n})")
    if B.shape != (m, n):
        raise ValueError(f"B has shape {B.shape}, expected ({m}, {n})")
    H_s = sp.csr_matrix(H)
    B_s = sp.csr_matrix(B)
    A = sp.bmat(
        [[H_s, -B_s.T], [B_s, None]], format="csr"
    )
    # sp.bmat leaves the zero block implicit; force the full shape.
    if A.shape != (n + m, n + m):
        A = sp.bmat(
            [[H_s, -B_s.T], [B_s, sp.csr_matrix((m, m))]], format="csr"
        )
    q = np.concatenate([p, -b])
    return LCP(A=A, q=q)


def split_kkt_solution(z: np.ndarray, n_primal: int) -> tuple:
    """Split a KKT-LCP solution vector into (x, r)."""
    return z[:n_primal].copy(), z[n_primal:].copy()
