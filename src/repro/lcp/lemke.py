"""Lemke's complementary pivoting algorithm for LCPs.

A classical *exact, finite* LCP solver (Lemke, 1965), included as an
independent oracle for the iterative methods: unlike PSOR or the projected
fixed point it needs no positive diagonal, so it applies *directly* to the
paper's KKT LCP — whose matrix ``A = [[H, −Bᵀ], [B, 0]]`` is positive
semidefinite (``zᵀAz = z₁ᵀHz₁ ≥ 0``) and therefore copositive-plus, the
class Lemke provably processes: it terminates either at a solution or on a
secondary ray proving infeasibility.

Dense tableau implementation, O(n²) per pivot: intended for tests and
small/medium instances, not the production path (that is the MMSIM's job).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.lcp.problem import LCP, LCPResult


@dataclass
class LemkeOptions:
    """``telemetry`` is an optional event sink (see
    :class:`repro.telemetry.EventSink`); when set, one ``pivot`` event per
    complementary pivot (entering/leaving column indices, min ratio) plus
    a final ``done`` event are emitted."""

    max_pivots: int = 10000
    tol: float = 1e-9
    telemetry: Optional[object] = None


def lemke_solve(lcp: LCP, options: Optional[LemkeOptions] = None) -> LCPResult:
    """Solve an LCP by Lemke's method with the all-ones covering vector.

    Returns a converged :class:`LCPResult` on success; ``converged=False``
    with a message on ray termination (no solution found along the path)
    or pivot-limit exhaustion.
    """
    opts = options or LemkeOptions()
    A = lcp.A.toarray() if sp.issparse(lcp.A) else np.asarray(lcp.A, dtype=float)
    q = lcp.q.copy()
    n = lcp.n
    emit = opts.telemetry.emit if opts.telemetry is not None else None

    if n == 0 or np.all(q >= -opts.tol):
        if emit is not None:
            emit("lemke", "done", iterations=0, converged=True, residual=0.0)
        return LCPResult(
            z=np.zeros(n), converged=True, iterations=0,
            residual=lcp.natural_residual(np.zeros(n)), solver="lemke",
        )

    # Tableau: columns [w (I) | z (−A) | z0 (−d)], rows = w basis initially.
    # We keep the standard dictionary  w − A z − d z0 = q  and pivot.
    tol = opts.tol
    tableau = np.hstack([np.eye(n), -A, -np.ones((n, 1)), q.reshape(-1, 1)])
    # basis[i] = index of the basic variable of row i:
    #   0..n-1 -> w_i,  n..2n-1 -> z_{i-n},  2n -> z0
    basis = list(range(n))

    # Initial pivot: z0 enters, the most negative q row leaves.
    row = int(np.argmin(q))
    entering = 2 * n  # z0
    leaving = basis[row]
    _pivot(tableau, row, entering)
    basis[row] = entering
    # Complement of the variable that just left becomes the next entering.
    entering = _complement(leaving, n)

    for iteration in range(1, opts.max_pivots + 1):
        col = tableau[:, entering]
        rhs = tableau[:, -1]
        # Minimum ratio test over rows with positive pivot column entries.
        candidates = [
            (rhs[i] / col[i], i) for i in range(n) if col[i] > tol
        ]
        if not candidates:
            z = _extract_z(tableau, basis, n)
            residual = lcp.natural_residual(z)
            if emit is not None:
                emit(
                    "lemke", "done",
                    iterations=iteration, converged=False, residual=residual,
                    ray_termination=True,
                )
            return LCPResult(
                z=z,
                converged=False,
                iterations=iteration,
                residual=residual,
                solver="lemke",
                message="ray termination (no solution on the Lemke path)",
            )
        # Lexicographic-ish tie-break: prefer kicking z0 out when possible.
        ratio = min(c[0] for c in candidates)
        tied = [i for r, i in candidates if r <= ratio + tol]
        row = next((i for i in tied if basis[i] == 2 * n), tied[0])

        leaving = basis[row]
        _pivot(tableau, row, entering)
        basis[row] = entering
        if emit is not None:
            emit(
                "lemke", "pivot",
                pivot=iteration, entering=entering, leaving=leaving,
                ratio=ratio,
            )

        if leaving == 2 * n:  # z0 left the basis: solution found.
            z = _extract_z(tableau, basis, n)
            residual = lcp.natural_residual(z)
            if emit is not None:
                emit(
                    "lemke", "done",
                    iterations=iteration, converged=True, residual=residual,
                )
            return LCPResult(
                z=z,
                converged=True,
                iterations=iteration,
                residual=residual,
                solver="lemke",
            )
        entering = _complement(leaving, n)

    z = _extract_z(tableau, basis, n)
    residual = lcp.natural_residual(z)
    if emit is not None:
        emit(
            "lemke", "done",
            iterations=opts.max_pivots, converged=False, residual=residual,
        )
    return LCPResult(
        z=z,
        converged=False,
        iterations=opts.max_pivots,
        residual=residual,
        solver="lemke",
        message="pivot limit reached",
    )


def _complement(var: int, n: int) -> int:
    """w_i <-> z_i complementarity (z0 has no complement)."""
    if var < n:
        return var + n
    return var - n


def _pivot(tableau: np.ndarray, row: int, col: int) -> None:
    """Gauss-Jordan pivot on (row, col)."""
    tableau[row, :] /= tableau[row, col]
    for i in range(tableau.shape[0]):
        if i != row and tableau[i, col] != 0.0:
            tableau[i, :] -= tableau[i, col] * tableau[row, :]


def _extract_z(tableau: np.ndarray, basis: list, n: int) -> np.ndarray:
    z = np.zeros(n)
    rhs = tableau[:, -1]
    for i, var in enumerate(basis):
        if n <= var < 2 * n:
            z[var - n] = max(rhs[i], 0.0)
    return z
