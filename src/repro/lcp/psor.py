"""Projected successive over-relaxation (PSOR) for LCPs.

Section 2.2 of the paper lists PSOR among the classical LCP methods that
the modulus-based iteration outperforms.  We implement it both as an
ablation comparator (``benchmarks/bench_ablation_lcp_solvers.py``) and as a
high-accuracy oracle for small LCPs in tests.

PSOR applies to LCPs whose matrix has a positive diagonal (e.g., the dual
Schur-complement LCP built by :func:`repro.qp.dual.make_dual_lcp`); the
paper's KKT LCP has a zero bottom-right block, which is exactly why the
paper needs the block splitting of Eq. (16) instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.lcp.problem import LCP, LCPResult


@dataclass
class PSOROptions:
    """``telemetry`` is an optional event sink (see
    :class:`repro.telemetry.EventSink`); when set, one ``iteration`` event
    per sweep (max z-change) plus a final ``done`` event are emitted."""

    relax: float = 1.2
    tol: float = 1e-10
    max_iterations: int = 50000
    telemetry: Optional[object] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.relax < 2.0:
            raise ValueError("PSOR relaxation must be in (0, 2)")


def psor_solve(
    lcp: LCP,
    options: Optional[PSOROptions] = None,
    z0: Optional[np.ndarray] = None,
) -> LCPResult:
    """Solve an LCP with projected SOR.

    Iterates ``z_i ← max(0, z_i − ω (A z + q)_i / A_ii)`` in Gauss-Seidel
    order.  Converges for symmetric positive definite A (Cryer, 1971).
    """
    opts = options or PSOROptions()
    A = sp.csr_matrix(lcp.A)
    n = lcp.n
    diag = A.diagonal()
    if np.any(diag <= 0):
        raise ValueError("PSOR requires a positive diagonal")
    z = np.zeros(n) if z0 is None else np.asarray(z0, dtype=float).copy()
    z = np.maximum(z, 0.0)

    indptr, indices, data = A.indptr, A.indices, A.data
    q = lcp.q
    relax = opts.relax
    emit = opts.telemetry.emit if opts.telemetry is not None else None
    converged = False
    iterations = 0
    for k in range(1, opts.max_iterations + 1):
        iterations = k
        max_change = 0.0
        for i in range(n):
            row = slice(indptr[i], indptr[i + 1])
            wi = data[row] @ z[indices[row]] + q[i]
            zi_new = max(0.0, z[i] - relax * wi / diag[i])
            change = abs(zi_new - z[i])
            if change > max_change:
                max_change = change
            z[i] = zi_new
        if emit is not None:
            emit("psor", "iteration", iteration=k, step=max_change, relax=relax)
        if max_change < opts.tol:
            converged = True
            break
    residual = lcp.natural_residual(z)
    if emit is not None:
        emit(
            "psor", "done",
            iterations=iterations, converged=converged, residual=residual,
        )
    return LCPResult(
        z=z,
        converged=converged,
        iterations=iterations,
        residual=residual,
        solver="psor",
        message="" if converged else "max iterations reached",
    )
