"""Generic matrix splittings for the MMSIM on ordinary (positive-diagonal)
LCPs.

These are the textbook splittings from Bai (2010) used to exercise the
generic iteration in tests and ablations:

* :class:`JacobiSplitting` — ``M = D`` (diagonal of A);
* :class:`GaussSeidelSplitting` — ``M = D + L`` (lower triangle of A);
* :class:`SORSplitting` — ``M = D/ω + L``;
* :class:`ExactSplitting` — ``M = A`` (one inner solve per iteration; the
  fastest in iteration count, used as a sanity ceiling).

The paper's specialized block splitting for the legalization KKT matrix,
whose bottom-right block has a zero diagonal and therefore cannot use the
splittings above, lives in :mod:`repro.core.splitting`.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

Matrix = Union[np.ndarray, sp.spmatrix]


class _BaseSplitting:
    """Common machinery: stores A, Ω, and a prefactorized (M + Ω) solver."""

    def __init__(self, A: Matrix, omega_diag: Optional[np.ndarray] = None) -> None:
        self.A = sp.csr_matrix(A)
        n = self.A.shape[0]
        if omega_diag is None:
            # Bai (2010) recommends Ω = diag(A) for positive-diagonal A;
            # it satisfies the convergence conditions for the classical
            # splittings below (fall back to 1 where the diagonal is not
            # positive).
            d = self.A.diagonal().copy()
            d[d <= 0] = 1.0
            omega_diag = d
        self.omega_diag = np.asarray(omega_diag, dtype=float).ravel()
        if self.omega_diag.shape != (n,):
            raise ValueError("omega_diag has wrong shape")
        if np.any(self.omega_diag <= 0):
            raise ValueError("Ω must be positive diagonal")
        M = self._build_M()
        # The splitting convention is A = M − N, hence N = M − A.
        self.N = (M - self.A).tocsr()
        M_plus = (M + sp.diags(self.omega_diag)).tocsc()
        self._solve = spla.factorized(M_plus)

    def _build_M(self) -> sp.spmatrix:
        raise NotImplementedError

    # Splitting protocol -------------------------------------------------
    def apply_N(self, s: np.ndarray) -> np.ndarray:
        return self.N @ s

    def apply_omega_minus_A(self, s_abs: np.ndarray) -> np.ndarray:
        return self.omega_diag * s_abs - self.A @ s_abs

    def solve_M_plus_omega(self, rhs: np.ndarray) -> np.ndarray:
        return self._solve(rhs)


class JacobiSplitting(_BaseSplitting):
    """M = diag(A); requires a positive diagonal."""

    def _build_M(self) -> sp.spmatrix:
        d = self.A.diagonal()
        if np.any(d <= 0):
            raise ValueError("Jacobi splitting needs a positive diagonal")
        return sp.diags(d)


class GaussSeidelSplitting(_BaseSplitting):
    """M = D + L (lower triangle including diagonal)."""

    def _build_M(self) -> sp.spmatrix:
        d = self.A.diagonal()
        if np.any(d <= 0):
            raise ValueError("Gauss-Seidel splitting needs a positive diagonal")
        return sp.tril(self.A, k=0)


class SORSplitting(_BaseSplitting):
    """M = D/ω + L with relaxation parameter ω ∈ (0, 2)."""

    def __init__(
        self,
        A: Matrix,
        relax: float = 1.0,
        omega_diag: Optional[np.ndarray] = None,
    ) -> None:
        if not 0.0 < relax < 2.0:
            raise ValueError("SOR relaxation must be in (0, 2)")
        self.relax = relax
        super().__init__(A, omega_diag)

    def _build_M(self) -> sp.spmatrix:
        d = self.A.diagonal()
        if np.any(d <= 0):
            raise ValueError("SOR splitting needs a positive diagonal")
        strict_lower = sp.tril(self.A, k=-1)
        return sp.diags(d / self.relax) + strict_lower


class ExactSplitting(_BaseSplitting):
    """M = A, N = 0 (modulus iteration with an exact inner solve)."""

    def _build_M(self) -> sp.spmatrix:
        return self.A.copy()
