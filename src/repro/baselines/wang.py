"""ASP-DAC'17-style mixed-cell-height legalizer (after Wang et al. [18]).

Wang et al. extend Abacus to mixed heights while *honoring the GP cell
ordering* — the insight the paper credits for high-quality legalization.
Our reimplementation (the authors' binary is unavailable; see DESIGN.md)
keeps those two pillars:

* cells are processed in global-placement x order, so relative order within
  rows is preserved;
* single-row cells are inserted by trial ``PlaceRow`` into candidate rows
  (quadratic-cost row selection, exactly Abacus);
* a multi-row cell is tried on every rail-correct bottom row: it is
  *pinned* at the first feasible x at or right of its GP x (compressing
  committed predecessors leftward where needed, the compression charged to
  the row-selection cost), and the pin becomes an immovable *wall* in each
  spanned row, which later insertions collapse against;
* a final row-local PlaceRow refinement
  (:func:`repro.baselines.refine.placerow_refine`) re-optimizes single-row
  cells between the committed walls — modelling Wang et al.'s remediation
  of Abacus's insufficiencies with the row-optimal shifting their
  algorithm performs during insertion.

This is a sequential, one-cell-at-a-time method: better than greedy Tetris
and local-region legalization (it shifts whole clusters optimally), but
without the MMSIM's global view — matching its middle position in Table 2.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from repro.baselines.common import BaselineResult, finish_result
from repro.baselines.refine import placerow_refine
from repro.core.tetris_fix import tetris_allocate
from repro.baselines.placerow import RowPlacer, quadratic_cost
from repro.geometry import snap_up
from repro.netlist.cell import CellInstance
from repro.netlist.design import Design
from repro.utils.timer import StageTimer


class WangLegalizer:
    """Order-preserving Abacus extension for mixed cell heights."""

    name = "wang"

    def __init__(self, row_search_range: int = 64) -> None:
        self.row_search_range = row_search_range

    def legalize(self, design: Design) -> BaselineResult:
        timer = StageTimer()
        core = design.core
        with timer.stage("wang"):
            placers: Dict[int, RowPlacer] = {
                r: RowPlacer(core.xl, core.xh) for r in range(core.num_rows)
            }
            cells = sorted(design.movable_cells, key=lambda c: (c.gp_x, c.id))
            failed = 0
            for cell in cells:
                if cell.height_rows == 1:
                    ok = self._commit_single(cell, core, placers)
                else:
                    ok = self._commit_multi(cell, core, placers)
                if not ok:
                    failed += 1

            for placer in placers.values():
                placer.snap_to_sites(core.xl, core.site_width)
            for row, placer in placers.items():
                for cid, x in placer.positions():
                    cell = design.cells[cid]
                    if cell.row_index == row:  # walls appear in several rows
                        cell.x = x

        unplaced = 0
        has_fixed = any(cell.fixed for cell in design.cells)
        if has_fixed:
            # The sequential placers are obstacle-blind; re-commit through
            # the obstacle-aware allocation, which re-places any cell that
            # landed on a fixed footprint.
            with timer.stage("obstacle_repair"):
                stats = tetris_allocate(design)
                unplaced = stats.num_unplaced
        if failed:
            # Rare dense-row fallback: re-place stranded cells at the
            # nearest free footprint of the otherwise-final placement.
            with timer.stage("repair"):
                for cell in design.movable_cells:
                    if cell.row_index is None:
                        cell.x = cell.gp_x
                        cell.row_index = core.nearest_correct_row(
                            cell.master, cell.gp_y
                        )
                        cell.y = core.row_y(cell.row_index)
                stats = tetris_allocate(design)
                unplaced = stats.num_unplaced

        if unplaced == 0:
            # Refinement assumes a legal layout; skip it when the repair
            # could not restore one (the failure is reported instead).
            with timer.stage("refine"):
                placerow_refine(design)
        return finish_result(
            design, self.name, timer.total(), num_failed=unplaced,
            stage_seconds=timer.as_dict(),
        )

    # ------------------------------------------------------------------
    def _commit_single(
        self, cell: CellInstance, core, placers: Dict[int, RowPlacer]
    ) -> bool:
        ideal = core.nearest_correct_row(cell.master, cell.gp_y)
        best: Optional[Tuple[float, int]] = None
        for offset in range(self.row_search_range + 1):
            progressed = False
            for row in {ideal - offset, ideal + offset}:
                if not 0 <= row < core.num_rows:
                    continue
                progressed = True
                dy = core.row_y(row) - cell.gp_y
                if best is not None and dy * dy >= best[0]:
                    continue
                placer = placers[row]
                if placer.used_width + cell.width > core.width + 1e-9:
                    continue
                x = placer.trial_append(cell.gp_x, cell.width)
                if x is None:
                    continue
                cost = quadratic_cost(x - cell.gp_x, dy)
                if best is None or cost < best[0]:
                    best = (cost, row)
            if not progressed and best is not None:
                break
            dy_next = (offset + 1) * core.row_height - abs(
                cell.gp_y - core.row_y(min(max(ideal, 0), core.num_rows - 1))
            )
            if best is not None and dy_next > 0 and dy_next * dy_next >= best[0]:
                break
        if best is None:
            return False
        _, row = best
        placers[row].append(cell.id, cell.gp_x, cell.width)
        cell.row_index = row
        cell.y = core.row_y(row)
        cell.flipped = (
            cell.master.bottom_rail is not None
            and not cell.master.is_even_height
            and core.rails.needs_flip(cell.master, row)
        )
        return True

    def _commit_multi(
        self, cell: CellInstance, core, placers: Dict[int, RowPlacer]
    ) -> bool:
        master = cell.master
        h = master.height_rows
        candidates = [
            r
            for r in range(core.num_rows - h + 1)
            if core.rails.row_is_correct(master, r)
        ]
        best: Optional[Tuple[float, int, float]] = None
        for row in candidates:
            spanned = range(row, row + h)
            x_min = max(placers[r].packed_frontier for r in spanned)
            x = snap_up(max(cell.gp_x, x_min), core.xl, core.site_width)
            if x + cell.width > core.xh + 1e-9:
                continue
            dy = core.row_y(row) - cell.gp_y
            # Pinning below a row's frontier compresses that row's cells
            # leftward; charge the compression as displacement cost.
            push = sum(max(0.0, placers[r].frontier() - x) for r in spanned)
            cost = quadratic_cost(x - cell.gp_x, dy) + push * push
            if best is None or cost < best[0]:
                best = (cost, row, x)
        if best is None:
            return False
        _, row, x = best
        for r in range(row, row + h):
            placers[r].append_pinned(cell.id, x, cell.width)
        cell.row_index = row
        cell.x = x
        cell.y = core.row_y(row)
        return True
