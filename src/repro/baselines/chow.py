"""DAC'16-style multi-row-height legalizer (after Chow, Pui, Young [7]).

The published method places each cell, one at a time, at the nearest
site-aligned and power-rail-matched position; when that spot is occupied it
picks a *local region* that can accommodate the cell and legalizes inside
that region only, shifting the cells already there.  The paper under
reproduction characterizes it as fast but quality-limited "because the
selection of the region and legalization tend to be local".

Our reimplementation (binary unavailable; see DESIGN.md) keeps that
structure:

1. try the snapped, rail-correct home position;
2. on conflict, try *insertion with push*: open a gap at the target by
   shifting single-height neighbours left/right within the row (cascading,
   bounded by the local region's push caps — multi-row and fixed cells act
   as barriers and are never moved), over candidate rows within
   ``region_rows`` of home; the cheapest feasible plan (own displacement
   plus neighbour shifts) wins;
3. as a last resort, fall back to the nearest globally free footprint.

``improved=True`` models the authors' post-conference binary ("DAC'16-Imp"
in Table 2) with larger region caps — measurably better displacement,
still a greedy, locally-scoped method.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.baselines.common import BaselineResult, finish_result
from repro.core.tetris_fix import TetrisFixStats, place_at_nearest_free
from repro.netlist.cell import CellInstance
from repro.netlist.design import Design
from repro.rows.sitemap import SiteMap
from repro.utils.timer import StageTimer


@dataclass
class _Placed:
    """One committed occupant of a row (site units)."""

    site: int
    n_sites: int
    cell: CellInstance
    movable: bool  # single-height movable cells can be pushed

    @property
    def end(self) -> int:
        return self.site + self.n_sites


class ChowLegalizer:
    """Greedy local-region legalization for mixed cell heights."""

    def __init__(
        self,
        improved: bool = False,
        region_rows: Optional[int] = None,
        region_sites: Optional[int] = None,
        push_limit_sites: Optional[int] = None,
    ) -> None:
        self.improved = improved
        self.region_rows = region_rows if region_rows is not None else (2 if improved else 1)
        self.region_sites = region_sites if region_sites is not None else (120 if improved else 60)
        self.push_limit = push_limit_sites if push_limit_sites is not None else 24
        self.name = "chow_imp" if improved else "chow"

    # ------------------------------------------------------------------
    def legalize(self, design: Design) -> BaselineResult:
        timer = StageTimer()
        core = design.core
        with timer.stage("greedy"):
            self._site_map = SiteMap(core)
            self._rows: List[List[_Placed]] = [[] for _ in range(core.num_rows)]
            for cell in design.cells:
                if cell.fixed:
                    row = core.row_of_y(cell.y)
                    site = int(round((cell.x - core.xl) / core.site_width))
                    self._site_map.occupy_cell(cell, row, site)
                    self._insert_record(cell, row, site, movable=False)

            cells = sorted(design.movable_cells, key=lambda c: (c.gp_x, c.id))
            failed = 0
            for cell in cells:
                if not self._place(cell, design):
                    failed += 1

        return finish_result(
            design, self.name, timer.total(), num_failed=failed,
            stage_seconds=timer.as_dict(),
        )

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _insert_record(self, cell: CellInstance, row: int, site: int, movable: bool) -> None:
        n = self._site_map.sites_of_width(cell.width)
        rec = _Placed(
            site=site,
            n_sites=n,
            cell=cell,
            movable=movable and cell.height_rows == 1,
        )
        for r in range(row, row + cell.height_rows):
            lst = self._rows[r]
            keys = [p.site for p in lst]
            lst.insert(bisect.bisect_left(keys, site), rec)

    def _commit(self, cell: CellInstance, core, row: int, site: int) -> None:
        cell.row_index = row
        cell.x = core.xl + site * core.site_width
        cell.y = core.row_y(row)
        cell.flipped = (
            cell.master.bottom_rail is not None
            and not cell.master.is_even_height
            and core.rails.needs_flip(cell.master, row)
        )
        self._site_map.occupy_cell(cell, row, site)
        self._insert_record(cell, row, site, movable=True)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _place(self, cell: CellInstance, design: Design) -> bool:
        core = design.core
        home_row = core.nearest_correct_row(cell.master, cell.gp_y)
        snapped = core.clamp_site_x(cell.gp_x, cell.width)
        site = int(round((snapped - core.xl) / core.site_width))
        n_sites = self._site_map.sites_of_width(cell.width)

        # 1. Nearest aligned, rail-matched position.
        if self._site_map.footprint_free(home_row, site, n_sites, cell.height_rows):
            self._commit(cell, core, home_row, site)
            return True

        # 2. Local region search.
        found = self._search_region(cell, core, home_row, site, n_sites)
        if found is not None:
            kind, row, new_site, moves = found
            if kind == "push":
                self._apply_plan(cell, core, (row, new_site, moves))
            else:
                self._commit(cell, core, row, new_site)
            return True

        # 3. Fallback: nearest globally free footprint.
        cell.row_index = home_row
        cell.x = snapped
        cell.y = core.row_y(home_row)
        stats = TetrisFixStats(num_cells=1)
        if not place_at_nearest_free(cell, design, self._site_map, stats):
            from repro.core.compaction import compact_rows_and_place, evict_and_place

            if not compact_rows_and_place(design, self._site_map, cell):
                if not evict_and_place(design, self._site_map, cell):
                    # Leave no phantom commitment behind: later placements
                    # must not treat this cell's stale position as real.
                    cell.row_index = None
                    return False
            # Compaction/eviction may have moved cells (possibly across
            # rows): rebuild the per-row occupant records from scratch.
            self._rebuild_records(design)
            return True
        self._insert_record(
            cell,
            cell.row_index,
            int(round((cell.x - core.xl) / core.site_width)),
            movable=True,
        )
        return True

    def _rebuild_records(self, design: Design) -> None:
        """Rebuild per-row occupant lists after a global fallback moved
        committed cells (possibly across rows)."""
        core = design.core
        self._rows = [[] for _ in range(core.num_rows)]
        for other in design.cells:
            row = other.row_index
            if row is None:
                if other.fixed:
                    row = core.row_of_y(other.y)
                else:
                    continue  # not yet placed
            site = int(round((other.x - core.xl) / core.site_width))
            self._insert_record(other, row, site, movable=not other.fixed)

    # ------------------------------------------------------------------
    # Push planning
    # ------------------------------------------------------------------
    def _search_region(
        self, cell: CellInstance, core, home_row: int, site: int, n_sites: int
    ) -> Optional[tuple]:
        """Find a spot in the local region.

        The fast variant is *first fit*: it takes the first candidate row
        (scanned outward from home) offering a free footprint near the
        target — cheap, but it never weighs alternatives.  The improved
        variant is *best fit*: it scores free-footprint candidates and
        push-insertion plans across the whole region and takes the
        cheapest.
        """
        best = None
        best_cost = float("inf")
        max_bottom = core.num_rows - cell.height_rows
        for d_row in range(0, self.region_rows + 1):
            for row in sorted({home_row - d_row, home_row + d_row}):
                if not 0 <= row <= max_bottom:
                    continue
                if not core.rails.row_is_correct(cell.master, row):
                    continue
                y_cost = abs(core.row_y(row) - cell.gp_y)
                if y_cost >= best_cost:
                    continue
                cand = self._site_map.nearest_fit_in_row(
                    row, cell.gp_x, cell.width, cell.height_rows
                )
                if cand is not None:
                    x_cost = abs(self._site_map.site_to_x(cand) - cell.gp_x)
                    if x_cost <= self.region_sites * core.site_width:
                        if not self.improved:
                            return ("free", row, cand, None)
                        cost = y_cost + x_cost
                        if cost < best_cost:
                            best_cost = cost
                            best = ("free", row, cand, None)
                if self.improved:
                    plan = self._plan_push(cell, core, row, site, n_sites)
                    if plan is not None:
                        moves, total_shift = plan
                        x_cost = abs(
                            core.xl + site * core.site_width - cell.gp_x
                        )
                        cost = y_cost + x_cost + total_shift * core.site_width
                        if cost < best_cost:
                            best_cost = cost
                            best = ("push", row, site, moves)
        return best

    def _plan_push(
        self, cell: CellInstance, core, row: int, site: int, n_sites: int
    ) -> Optional[Tuple[List[Tuple["_Placed", int]], int]]:
        """Plan shifts opening ``[site, site+n_sites)`` across the footprint.

        Only single-height movable occupants shift; each spanned row is
        planned independently (a single-height cell lives in exactly one
        row, so plans cannot conflict).  Returns (moves, total_shift_sites)
        or None when the region cannot absorb the cell.
        """
        all_moves: List[Tuple[_Placed, int]] = []
        total = 0
        for r in range(row, row + cell.height_rows):
            res = self._plan_row_push(core, r, site, site + n_sites)
            if res is None:
                return None
            moves, shift = res
            all_moves.extend(moves)
            total += shift
            if total > self.push_limit:
                return None
        return all_moves, total

    def _plan_row_push(
        self, core, row: int, lo: int, hi: int
    ) -> Optional[Tuple[List[Tuple["_Placed", int]], int]]:
        """Open [lo, hi) in one row by cascading pushes; None if impossible."""
        if lo < 0 or hi > core.num_sites:
            return None
        occupants = self._rows[row]
        overlapping = [p for p in occupants if p.site < hi and p.end > lo]
        if not overlapping:
            return [], 0
        if any(not p.movable for p in overlapping):
            return None
        mid = 0.5 * (lo + hi)
        go_left = [p for p in overlapping if p.site + 0.5 * p.n_sites <= mid]
        go_right = [p for p in overlapping if p.site + 0.5 * p.n_sites > mid]

        moves: List[Tuple[_Placed, int]] = []
        total = 0

        # Cascade the left group (and whatever it bumps into) leftward.
        if go_left:
            bound = lo
            i = occupants.index(go_left[-1])
            while i >= 0:
                p = occupants[i]
                if p.end <= bound:
                    break
                new_site = min(p.site, bound - p.n_sites)
                if new_site < 0 or not p.movable:
                    return None
                shift = p.site - new_site
                total += shift
                if total > self.push_limit:
                    return None
                moves.append((p, new_site))
                bound = new_site
                i -= 1

        # Cascade the right group rightward.
        if go_right:
            bound = hi
            start = occupants.index(go_right[0])
            for i in range(start, len(occupants)):
                p = occupants[i]
                if p.site >= bound:
                    break
                new_site = bound
                if new_site + p.n_sites > core.num_sites or not p.movable:
                    return None
                shift = new_site - p.site
                total += shift
                if total > self.push_limit:
                    return None
                moves.append((p, new_site))
                bound = new_site + p.n_sites
        return moves, total

    def _apply_plan(self, cell: CellInstance, core, plan: tuple) -> None:
        row, site, moves = plan
        # Release every moving record, then re-occupy at new positions
        # (two phases so intermediate overlaps cannot corrupt the map).
        for rec, _ in moves:
            self._site_map.release(rec.cell.row_index, rec.site, rec.n_sites)
        for rec, new_site in moves:
            r = rec.cell.row_index
            self._site_map.occupy(r, new_site, rec.n_sites)
            rec.site = new_site
            rec.cell.x = core.xl + new_site * core.site_width
        for r in self._touched_rows(row, cell):
            self._rows[r].sort(key=lambda p: p.site)
        self._commit(cell, core, row, site)

    @staticmethod
    def _touched_rows(row: int, cell: CellInstance):
        return range(row, row + cell.height_rows)
