"""Abacus legalization (Spindler, Schlichtmann, Johannes; ISPD'08).

Two legalizers built on :class:`~repro.baselines.placerow.RowPlacer`:

* :class:`PlaceRowLegalizer` — the paper's Section 5.3 comparator: cells go
  to their *nearest correct row* (the same assignment the MMSIM flow uses)
  and each row is solved optimally by ``PlaceRow``.  On single-row-height
  designs this produces the exact same optimal x positions as the MMSIM,
  which is the optimality cross-check of Section 5.3.

* :class:`AbacusLegalizer` — classic full Abacus: cells in x order, each
  tried in nearby rows via trial PlaceRow insertions, committed to the
  cheapest row.  Only defined for single-row-height designs (the paper's
  Section 5.3 remark: with multi-row cells the dynamic-programming optimal
  substructure breaks, which is precisely the motivation for the MMSIM).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.baselines.common import BaselineResult, finish_result
from repro.baselines.placerow import RowPlacer, quadratic_cost
from repro.core.row_assign import assign_rows
from repro.netlist.design import Design
from repro.telemetry import active_tracer


class PlaceRowLegalizer:
    """Nearest-correct-row assignment + per-row optimal PlaceRow.

    ``relax_right_boundary=True`` mirrors the MMSIM relaxation (cells may
    exceed the right edge; callers re-legalize with the Tetris stage);
    the default clamps into the row like classic Abacus.
    """

    name = "placerow"

    def __init__(self, relax_right_boundary: bool = False) -> None:
        self.relax_right_boundary = relax_right_boundary

    def legalize(self, design: Design) -> BaselineResult:
        tracer = active_tracer()
        core = design.core
        with tracer.span(
            "placerow_legalize", design=design.name, algorithm=self.name
        ) as root:
            with tracer.span("row_assign"):
                assignment = assign_rows(design)

            with tracer.span("placerow"):
                xh = math.inf if self.relax_right_boundary else core.xh
                failed = 0
                for row, cells in sorted(assignment.rows.items()):
                    multi = [c for c in cells if c.height_rows > 1]
                    if multi:
                        raise ValueError(
                            "PlaceRowLegalizer only supports single-row-height "
                            f"designs; row {row} holds multi-row cell "
                            f"{multi[0].name!r} (use the MMSIM flow instead)"
                        )
                    placer = RowPlacer(core.xl, xh)
                    for cell in cells:  # already in GP-x order
                        placer.append(cell.id, cell.gp_x, cell.width)
                    placer.snap_to_sites(core.xl, core.site_width)
                    for cid, x in placer.positions():
                        design.cells[cid].x = x
        stage_seconds = root.child_seconds()
        return finish_result(
            design, self.name, sum(stage_seconds.values()), num_failed=failed,
            stage_seconds=stage_seconds,
        )


class AbacusLegalizer:
    """Classic Abacus: greedy row search with trial PlaceRow insertions.

    ``row_search_range`` bounds how far (in rows) from the ideal row the
    search looks; the scan prunes as soon as the y cost alone exceeds the
    best known total cost, so the bound is rarely hit.
    """

    name = "abacus"

    def __init__(self, row_search_range: int = 64) -> None:
        self.row_search_range = row_search_range

    def legalize(self, design: Design) -> BaselineResult:
        tracer = active_tracer()
        core = design.core
        with tracer.span(
            "abacus_legalize", design=design.name, algorithm=self.name
        ) as root:
            with tracer.span("abacus"):
                placers: Dict[int, RowPlacer] = {
                    r: RowPlacer(core.xl, core.xh) for r in range(core.num_rows)
                }
                cells = sorted(
                    design.movable_cells, key=lambda c: (c.gp_x, c.id)
                )
                failed = 0
                for cell in cells:
                    if cell.height_rows > 1:
                        raise ValueError(
                            "classic Abacus does not handle multi-row cells; "
                            "use WangLegalizer or the MMSIM flow for mixed "
                            "heights"
                        )
                    best_row = self._best_row(cell, core, placers)
                    if best_row is None:
                        failed += 1
                        continue
                    placers[best_row].append(cell.id, cell.gp_x, cell.width)
                    cell.row_index = best_row
                    cell.y = core.row_y(best_row)
                    cell.flipped = (
                        cell.master.bottom_rail is not None
                        and core.rails.needs_flip(cell.master, best_row)
                    )

                for row, placer in placers.items():
                    placer.snap_to_sites(core.xl, core.site_width)
                    for cid, x in placer.positions():
                        design.cells[cid].x = x

            if any(cell.fixed for cell in design.cells):
                # Row placers are obstacle-blind; re-commit through the
                # obstacle-aware allocation.
                with tracer.span("obstacle_repair"):
                    from repro.core.tetris_fix import tetris_allocate

                    tetris_allocate(design)
        stage_seconds = root.child_seconds()
        return finish_result(
            design, self.name, sum(stage_seconds.values()), num_failed=failed,
            stage_seconds=stage_seconds,
        )

    def _best_row(self, cell, core, placers) -> Optional[int]:
        ideal = core.row_of_y(cell.gp_y)
        best_row: Optional[int] = None
        best_cost = math.inf
        for offset in range(self.row_search_range + 1):
            for row in {ideal - offset, ideal + offset}:
                if not 0 <= row < core.num_rows:
                    continue
                dy = core.row_y(row) - cell.gp_y
                if dy * dy >= best_cost:
                    continue
                placer = placers[row]
                # Capacity check: a full row cannot take the cell.
                if placer.used_width + cell.width > core.width + 1e-9:
                    continue
                x = placer.trial_append(cell.gp_x, cell.width)
                if x is None:
                    continue
                cost = quadratic_cost(x - cell.gp_x, dy)
                if cost < best_cost:
                    best_cost = cost
                    best_row = row
            # Prune: if even the closest untried row's dy² exceeds best.
            dy_next = (offset + 1) * core.row_height - abs(
                cell.gp_y - core.row_y(ideal)
            )
            if best_row is not None and dy_next > 0 and dy_next * dy_next >= best_cost:
                break
        return best_row
