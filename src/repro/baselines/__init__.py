"""Baseline legalizers: Tetris, Abacus/PlaceRow, DAC'16-like, ASP-DAC'17-like."""

from repro.baselines.abacus import AbacusLegalizer, PlaceRowLegalizer
from repro.baselines.chow import ChowLegalizer
from repro.baselines.common import BaselineResult, Legalizer, finish_result
from repro.baselines.placerow import Cluster, RowPlacer
from repro.baselines.refine import placerow_refine
from repro.baselines.tetris import TetrisLegalizer
from repro.baselines.wang import WangLegalizer

__all__ = [
    "TetrisLegalizer",
    "AbacusLegalizer",
    "PlaceRowLegalizer",
    "ChowLegalizer",
    "WangLegalizer",
    "RowPlacer",
    "Cluster",
    "placerow_refine",
    "BaselineResult",
    "Legalizer",
    "finish_result",
]
