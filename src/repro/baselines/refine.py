"""Row-local PlaceRow refinement.

Given an already-legal placement, re-optimize the x position of every
single-row cell with *fixed* row assignment and *fixed* in-row ordering.
Multi-row cells (and fixed cells) partition each row into independent
*segments*; each segment is solved optimally by
:class:`~repro.baselines.placerow.RowPlacer` with the segment edges as row
boundaries, which yields the row-wise optimal quadratic displacement for
the given ordering.

Used as the "post-conference improvement" pass of the DAC'16-style baseline
(``DAC'16-Imp`` in Table 2) and available standalone as a cheap cleanup for
any legalizer's output.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.baselines.placerow import RowPlacer
from repro.geometry import snap_up
from repro.legality.checker import row_tolerance
from repro.netlist.design import Design


def placerow_refine(design: Design) -> float:
    """Refine in place; returns the reduction in quadratic x displacement.

    Requires every movable cell to carry a valid ``row_index`` (any of the
    legalizers in this package establishes one) and a legal input placement.
    """
    core = design.core
    before = sum((c.x - c.gp_x) ** 2 for c in design.movable_cells)

    # Bucket entries per row: (x, width, is_barrier, cell-or-None).
    per_row: Dict[int, List[Tuple[float, float, bool, object]]] = {
        r: [] for r in range(core.num_rows)
    }
    eps_y = row_tolerance(core) / core.row_height
    for cell in design.cells:
        if cell.fixed:
            # Obstacles need not be row-aligned: the barrier spans every
            # row the rectangle geometrically touches (same tolerance as
            # the Tetris site-map blocking), not just its nearest row.
            row_lo = int(math.floor((cell.y - core.yl) / core.row_height + eps_y))
            row_hi = int(
                math.ceil(
                    (cell.y + cell.height(core.row_height) - core.yl)
                    / core.row_height
                    - eps_y
                )
            )
            rows = range(max(row_lo, 0), min(max(row_hi, row_lo + 1), core.num_rows))
            barrier = True
        else:
            if cell.row_index is None:
                raise ValueError(f"cell {cell.name!r} has no row assignment")
            rows = range(cell.row_index, cell.row_index + cell.height_rows)
            barrier = cell.height_rows > 1
        for r in rows:
            per_row[r].append((cell.x, cell.width, barrier, cell))

    for row, entries in per_row.items():
        entries.sort(key=lambda t: (t[0], t[3].id))
        _refine_row(design, core, entries)

    after = sum((c.x - c.gp_x) ** 2 for c in design.movable_cells)
    return before - after


def _refine_row(design: Design, core, entries: List[Tuple]) -> None:
    """Optimize one row: PlaceRow on every run of cells between barriers."""
    segment: List = []
    seg_lo = core.xl
    for x, width, barrier, cell in entries:
        if barrier:
            _solve_segment(design, core, segment, seg_lo, x)
            segment = []
            # Off-grid barriers (macros need not be site-aligned) end
            # between site boundaries; the segment start must snap *up*
            # or the placer pins its leftmost cell off grid, tucked into
            # the barrier.  Overlapping barriers only advance the edge.
            seg_lo = max(
                seg_lo, snap_up(x + width, core.xl, core.site_width)
            )
        else:
            segment.append(cell)
    _solve_segment(design, core, segment, seg_lo, core.xh)


def _solve_segment(design: Design, core, cells: List, lo: float, hi: float) -> None:
    if not cells or hi <= lo:
        return
    placer = RowPlacer(lo, hi)
    for cell in cells:
        placer.append(cell.id, cell.gp_x, cell.width)
    placer.snap_to_sites(core.xl, core.site_width)
    for cid, x in placer.positions():
        design.cells[cid].x = x
