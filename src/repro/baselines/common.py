"""Shared baseline-legalizer plumbing.

Every legalizer in this repository (the MMSIM flow and all baselines)
follows one protocol: a ``name`` attribute and a ``legalize(design)`` method
that mutates cell positions in place and returns a result object exposing
``runtime``.  :class:`BaselineResult` is the light-weight result the
baselines return; the Table 2 harness recomputes displacement / ΔHPWL
itself from the design so all algorithms are measured identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Protocol

from repro.metrics.displacement import DisplacementStats, displacement_stats
from repro.metrics.hpwl import WirelengthStats, wirelength_stats
from repro.netlist.design import Design


@dataclass
class BaselineResult:
    """Outcome of one baseline legalization run."""

    algorithm: str
    design_name: str
    runtime: float
    num_failed: int = 0          # cells that found no legal position
    displacement: DisplacementStats = None
    wirelength: WirelengthStats = None
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    def summary(self) -> str:
        disp = (
            f"{self.displacement.total_manhattan_sites:.0f} sites"
            if self.displacement
            else "n/a"
        )
        dh = (
            f"{self.wirelength.delta_hpwl_percent:+.2f}%"
            if self.wirelength
            else "n/a"
        )
        return (
            f"{self.design_name} [{self.algorithm}]: disp={disp}, ΔHPWL={dh}, "
            f"failed={self.num_failed}, runtime={self.runtime:.2f}s"
        )


class Legalizer(Protocol):
    """The protocol every legalizer satisfies."""

    name: str

    def legalize(self, design: Design):  # pragma: no cover - protocol
        ...


def finish_result(
    design: Design,
    algorithm: str,
    runtime: float,
    num_failed: int = 0,
    stage_seconds: Dict[str, float] = None,
) -> BaselineResult:
    """Assemble a BaselineResult with freshly computed metrics."""
    return BaselineResult(
        algorithm=algorithm,
        design_name=design.name,
        runtime=runtime,
        num_failed=num_failed,
        displacement=displacement_stats(design),
        wirelength=wirelength_stats(design) if design.nets else None,
        stage_seconds=stage_seconds or {},
    )
