"""Abacus ``PlaceRow``: optimal single-row placement with fixed ordering.

The cluster-collapse dynamic of Spindler et al. (ISPD'08): cells are
appended to a row in x order; each cell starts its own cluster at its
preferred position, and clusters that overlap their predecessor merge, the
merged cluster moving to the weighted mean of its members' preferred
positions (clamped into the row).  For a fixed ordering this yields the
*optimal* quadratic-displacement positions in O(n) amortized — the oracle
the paper compares its MMSIM against in Section 5.3.

Extensions over the classic formulation:

* **trial mode** — :meth:`RowPlacer.trial_append` computes the position a
  cell *would* get without mutating the row (a virtual walk over the
  cluster chain), which the row-searching legalizers use to evaluate
  candidate rows cheaply;
* **walls** — immovable clusters (:meth:`RowPlacer.append_wall`) that stop
  the collapse, used by the ASP-DAC'17-style baseline to model committed
  multi-row cells crossing this row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class Cluster:
    """A maximal group of abutting cells sharing one optimal position."""

    e: float = 0.0       # total weight
    q: float = 0.0       # Σ e_i (x'_i − offset_i)
    w: float = 0.0       # total width
    x: float = 0.0       # current (optimal) left edge
    wall: bool = False   # immovable obstacle (multi-row cell / blockage)
    members: List[Tuple[int, float, float]] = field(default_factory=list)
    # members: (cell_id, preferred_x, width) in order


class RowPlacer:
    """One row's PlaceRow state.

    ``xl`` / ``xh`` bound cluster positions (``xh`` may be ``inf`` to model
    the paper's relaxed right boundary).
    """

    def __init__(self, xl: float, xh: float) -> None:
        if xh <= xl:
            raise ValueError("row must have positive extent")
        self.xl = xl
        self.xh = xh
        self.clusters: List[Cluster] = []
        self.used_width = 0.0
        # Leftmost achievable frontier if every movable cluster were packed
        # flush left (walls stay put); the feasibility bound for pins.
        self.packed_frontier = xl

    # ------------------------------------------------------------------
    # Core dynamics
    # ------------------------------------------------------------------
    def _clamp(self, x: float, width: float) -> float:
        hi = self.xh - width
        return min(max(x, self.xl), max(hi, self.xl))

    def append(self, cell_id: int, preferred_x: float, width: float, weight: float = 1.0) -> float:
        """Commit a cell to the row end; returns its final x position."""
        cluster = Cluster(
            e=weight,
            q=weight * preferred_x,
            w=width,
            members=[(cell_id, preferred_x, width)],
        )
        cluster.x = self._clamp(cluster.q / cluster.e, cluster.w)
        self.clusters.append(cluster)
        self.used_width += width
        self.packed_frontier += width
        self._collapse()
        return self.cell_position(cell_id)

    def append_wall(self, cell_id: int, x: float, width: float) -> None:
        """Commit an immovable obstacle at a fixed position.

        The obstacle must start at or after the current row frontier (walls
        never push committed cells).
        """
        if x < self.frontier() - 1e-9:
            raise ValueError(
                f"wall at {x} would overlap the row frontier {self.frontier()}"
            )
        wall = Cluster(e=0.0, q=0.0, w=width, x=x, wall=True)
        wall.members = [(cell_id, x, width)]
        self.clusters.append(wall)
        self.used_width += width
        self.packed_frontier = max(self.packed_frontier, x + width)

    def append_pinned(self, cell_id: int, x: float, width: float) -> None:
        """Commit an immovable cell at exactly *x*, pushing predecessors left.

        Unlike :meth:`append_wall`, the pin may land left of the current
        frontier: movable predecessor clusters are compressed leftward to
        make room (their positions become suboptimal — that is the cost a
        sequential legalizer pays for fixing a multi-row cell's x across
        several rows).  The caller must ensure ``x >= packed_frontier``.
        """
        if x < self.packed_frontier - 1e-9:
            raise ValueError(
                f"pin at {x} is infeasible; packed frontier is "
                f"{self.packed_frontier}"
            )
        if x + width > self.xh + 1e-9:
            raise ValueError(f"pin at {x} exceeds the row end {self.xh}")
        # Compress predecessors against the pin.
        bound = x
        for i in range(len(self.clusters) - 1, -1, -1):
            cluster = self.clusters[i]
            if cluster.x + cluster.w <= bound + 1e-12:
                break
            if cluster.wall:
                raise ValueError("pin overlaps an existing wall")
            cluster.x = bound - cluster.w
            bound = cluster.x
        wall = Cluster(e=0.0, q=0.0, w=width, x=x, wall=True)
        wall.members = [(cell_id, x, width)]
        self.clusters.append(wall)
        self.used_width += width
        self.packed_frontier = max(self.packed_frontier, x + width)

    def _collapse(self) -> None:
        """Merge the trailing cluster leftward while it overlaps."""
        while len(self.clusters) >= 2:
            cur = self.clusters[-1]
            prev = self.clusters[-2]
            if prev.x + prev.w <= cur.x + 1e-12:
                return
            if prev.wall:
                # Clamp against the wall instead of merging.
                cur.x = self._clamp(max(cur.x, prev.x + prev.w), cur.w)
                if cur.x < prev.x + prev.w - 1e-9:
                    raise RuntimeError(
                        "cluster squeezed between a wall and the right "
                        "boundary; callers must trial-check feasibility first"
                    )
                return
            # Merge prev <- cur.
            prev.q = prev.q + cur.q - cur.e * prev.w
            prev.e += cur.e
            prev.members.extend(cur.members)
            prev.w += cur.w
            prev.x = self._clamp(prev.q / prev.e if prev.e else prev.x, prev.w)
            self.clusters.pop()

    # ------------------------------------------------------------------
    # Trial (read-only) insertion
    # ------------------------------------------------------------------
    def trial_append(
        self, preferred_x: float, width: float, weight: float = 1.0
    ) -> Optional[float]:
        """Position the cell would get from :meth:`append`, without mutating.

        Returns None when the append is infeasible: the suffix of the row
        after the last wall cannot absorb the cell within the right
        boundary (walls are immovable, so no legal position exists).
        """
        ce, cq, cw = weight, weight * preferred_x, width
        x = self._clamp(cq / ce, cw)
        i = len(self.clusters) - 1
        while i >= 0:
            prev = self.clusters[i]
            if prev.x + prev.w <= x + 1e-12:
                break
            if prev.wall:
                x = self._clamp(max(x, prev.x + prev.w), cw)
                if x < prev.x + prev.w - 1e-9:
                    return None  # squeezed between wall and right boundary
                break
            cq = prev.q + cq - ce * prev.w
            ce += prev.e
            cw = prev.w + cw
            x = self._clamp(cq / ce if ce else x, cw)
            i -= 1
        # New cell is the last member: offset = merged width − own width.
        return x + cw - width

    def frontier(self) -> float:
        """Right edge of the last cluster (xl for an empty row)."""
        if not self.clusters:
            return self.xl
        last = self.clusters[-1]
        return last.x + last.w

    # ------------------------------------------------------------------
    # Extraction
    # ------------------------------------------------------------------
    def cell_position(self, cell_id: int) -> float:
        """Current x of a committed cell (linear scan; prefer positions())."""
        for cluster in self.clusters:
            offset = 0.0
            for cid, _, width in cluster.members:
                if cid == cell_id:
                    return cluster.x + offset
                offset += width
        raise KeyError(f"cell {cell_id} not in this row")

    def positions(self) -> List[Tuple[int, float]]:
        """(cell_id, x) for every committed cell, left to right."""
        out: List[Tuple[int, float]] = []
        for cluster in self.clusters:
            offset = 0.0
            for cid, _, width in cluster.members:
                out.append((cid, cluster.x + offset))
                offset += width
        return out

    def snap_to_sites(self, origin: float, pitch: float) -> None:
        """Round every movable cluster's left edge to the site grid.

        With integer-site widths and non-negative inter-cluster gaps,
        nearest-rounding every cluster start preserves legality, except
        that rounding *up* must not collide with an immovable wall (or the
        row end) to the right — in that case the cluster rounds down.
        """
        import math

        # bound[i]: start of the nearest wall right of cluster i (or xh).
        bounds = [self.xh] * len(self.clusters)
        next_wall = self.xh
        for i in range(len(self.clusters) - 1, -1, -1):
            bounds[i] = next_wall
            if self.clusters[i].wall:
                next_wall = self.clusters[i].x

        prev_end = self.xl
        for i, cluster in enumerate(self.clusters):
            if cluster.wall:
                prev_end = cluster.x + cluster.w
                continue
            k = math.floor((cluster.x - origin) / pitch + 0.5)
            x = origin + k * pitch
            if x + cluster.w > bounds[i] + 1e-9:
                x -= pitch
            x = max(x, prev_end, self.xl)
            cluster.x = x
            prev_end = x + cluster.w


def quadratic_cost(dx: float, dy: float) -> float:
    """Abacus's row-selection cost: squared Euclidean displacement."""
    return dx * dx + dy * dy
