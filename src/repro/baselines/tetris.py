"""Tetris legalization (Hill, US patent 6,370,673).

The classic greedy legalizer: process cells in ascending x, and give each
cell the row that minimizes its displacement when pushed against that row's
*frontier* (the right edge of everything already placed there).  Like the
falling blocks of its namesake, cells only ever stack against the frontier
— freed gaps are never revisited — which is why Tetris is fast but
displacement-hungry, the weakest baseline here.

Mixed heights are handled naturally: a multi-row cell presses against the
max frontier of all its spanned rows (rail-correct bottom rows only) and
advances all of them.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.baselines.common import BaselineResult, finish_result
from repro.geometry import snap_up
from repro.netlist.cell import CellInstance
from repro.netlist.design import Design
from repro.utils.timer import StageTimer


class TetrisLegalizer:
    """Classic frontier-stacking legalization in global x order."""

    name = "tetris"

    def __init__(self, row_search_range: int = 96) -> None:
        self.row_search_range = row_search_range

    def legalize(self, design: Design) -> BaselineResult:
        timer = StageTimer()
        core = design.core
        with timer.stage("tetris"):
            frontiers: List[float] = [core.xl] * core.num_rows
            # Fixed cells pre-advance the frontier of the rows they block.
            for cell in design.cells:
                if not cell.fixed:
                    continue
                row = core.row_of_y(cell.y)
                end = cell.x + cell.width
                for r in range(row, min(row + cell.height_rows, core.num_rows)):
                    frontiers[r] = max(frontiers[r], end)

            cells = sorted(design.movable_cells, key=lambda c: (c.gp_x, c.id))
            stranded = []
            for cell in cells:
                if not self._drop(cell, core, frontiers):
                    stranded.append(cell)
            failed = self._repair(design, stranded) if stranded else 0
        return finish_result(
            design, self.name, timer.total(), num_failed=failed,
            stage_seconds=timer.as_dict(),
        )

    # ------------------------------------------------------------------
    def _drop(self, cell: CellInstance, core, frontiers: List[float]) -> bool:
        h = cell.height_rows
        ideal = core.nearest_correct_row(cell.master, cell.gp_y)
        best: Optional[Tuple[float, int, float]] = None
        max_bottom = core.num_rows - h
        for offset in range(self.row_search_range + 1):
            candidates = {ideal - offset, ideal + offset}
            any_valid = False
            for row in candidates:
                if not 0 <= row <= max_bottom:
                    continue
                if not core.rails.row_is_correct(cell.master, row):
                    continue
                any_valid = True
                dy = abs(core.row_y(row) - cell.gp_y)
                if best is not None and dy >= best[0]:
                    continue
                frontier = max(frontiers[row : row + h])
                x = snap_up(max(cell.gp_x, frontier), core.xl, core.site_width)
                if x + cell.width > core.xh + 1e-9:
                    continue
                cost = abs(x - cell.gp_x) + dy
                if best is None or cost < best[0]:
                    best = (cost, row, x)
            if best is not None and offset * core.row_height > best[0]:
                break
            if not any_valid and offset > max(core.num_rows, self.row_search_range):
                break
            if offset >= self.row_search_range:
                break
        if best is None:
            return False
        _, row, x = best
        cell.x = x
        cell.y = core.row_y(row)
        cell.row_index = row
        cell.flipped = (
            cell.master.bottom_rail is not None
            and not cell.master.is_even_height
            and core.rails.needs_flip(cell.master, row)
        )
        for r in range(row, row + h):
            frontiers[r] = x + cell.width
        return True

    @staticmethod
    def _repair(design: Design, stranded: List[CellInstance]) -> int:
        """Frontier stacking can strand cells on dense designs (it never
        backfills).  Re-place stranded cells at the nearest genuinely free
        footprint so the algorithm stays total; returns the count that
        still could not be placed (core physically full)."""
        from repro.core.tetris_fix import TetrisFixStats, place_at_nearest_free
        from repro.rows.sitemap import SiteMap

        core = design.core
        site_map = SiteMap(core)
        stranded_ids = {c.id for c in stranded}
        for cell in design.cells:
            if cell.id in stranded_ids and not cell.fixed:
                continue
            row = cell.row_index
            if row is None:
                row = core.row_of_y(cell.y)
            site = int(round((cell.x - core.xl) / core.site_width))
            site_map.occupy_cell(cell, row, site)
        from repro.core.compaction import compact_rows_and_place, evict_and_place

        failed = 0
        stats = TetrisFixStats(num_cells=len(stranded))
        pending = set(stranded_ids)
        for cell in stranded:
            pending.discard(cell.id)
            cell.x = cell.gp_x
            cell.row_index = core.nearest_correct_row(cell.master, cell.gp_y)
            cell.y = core.row_y(cell.row_index)
            if place_at_nearest_free(cell, design, site_map, stats):
                continue
            # Free space exists but is fragmented: compact a row span.
            if compact_rows_and_place(design, site_map, cell, ignore=pending):
                continue
            if not evict_and_place(design, site_map, cell, ignore=pending):
                failed += 1
        return failed
