"""Declarative scenario/configuration layer (see docs/CONFIGURATION.md).

:mod:`repro.scenario.spec` is the machinery (typed :class:`ConfigVar`
knobs, cross-field :class:`Constraint` rules, :class:`ScenarioSpec`
with ``validate`` / ``enumerate_valid`` / ``self_check``);
:mod:`repro.scenario.specs` declares the repo's concrete specs.  The
fuzz-oracle matrix generator (:mod:`repro.scenario.matrix`) and the
``repro sweep`` campaign runner (:mod:`repro.scenario.sweep`) are
imported explicitly by their consumers — not re-exported here — so
importing this package from ``LegalizerConfig.__post_init__`` stays
cycle-free and cheap.
"""

from repro.scenario.spec import (
    Anything,
    Choice,
    ConfigVar,
    ConfigViolation,
    Constraint,
    Domain,
    Range,
    ScenarioSpec,
    combine_specs,
    conflicts,
    format_violations,
    requires,
    rule,
)
from repro.scenario.specs import (
    BENCHGEN_SPEC,
    LEGALIZER_SPEC,
    SERVICE_SPEC,
    SWEEP_SPEC,
)

__all__ = [
    "Anything",
    "BENCHGEN_SPEC",
    "Choice",
    "ConfigVar",
    "ConfigViolation",
    "Constraint",
    "Domain",
    "LEGALIZER_SPEC",
    "Range",
    "SERVICE_SPEC",
    "SWEEP_SPEC",
    "ScenarioSpec",
    "combine_specs",
    "conflicts",
    "format_violations",
    "requires",
    "rule",
]
