"""The ``repro sweep`` campaign runner.

A campaign is a small JSON (or YAML, when PyYAML is importable) *axes
file* mapping knob names to candidate value lists, e.g.::

    {
        "shard": [true, false],
        "parallel": [false, true],
        "gen.scale": [0.01, 0.02]
    }

:func:`run_sweep` expands it through
:meth:`~repro.scenario.spec.ScenarioSpec.enumerate_valid` on
:data:`~repro.scenario.specs.SWEEP_SPEC` — invalid combinations
(``parallel=True`` with ``shard=False`` above) are pruned, not run and
not errored — then legalizes a fresh benchmark build per surviving
point under its own telemetry session, and writes a JSONL report: one
``campaign`` header record plus one ``point`` record per point carrying
the result metrics and the telemetry counters.  ``dry_run`` writes the
plan (the valid lattice) without solving anything.

Knobs with a ``gen.`` prefix parameterize the benchmark build
(:func:`repro.benchgen.make_benchmark`); everything else overrides
:class:`~repro.core.legalizer.LegalizerConfig` defaults.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, TextIO

from repro.scenario.specs import SWEEP_SPEC


@dataclass
class SweepOptions:
    """Campaign-level settings (the axes file supplies the lattice)."""

    #: Paper benchmark profile every point builds from.
    benchmark: str = "fft_2"
    #: Default build scale / seed; ``gen.scale`` / ``gen.seed`` axes
    #: override them per point.
    scale: float = 0.02
    seed: int = 0
    #: JSONL report path (None = don't write a file).
    out: Optional[str] = None
    #: Plan only: enumerate and report the valid lattice, solve nothing.
    dry_run: bool = False
    #: Cap on executed points (None = all valid points).
    limit: Optional[int] = None


@dataclass
class SweepSummary:
    """What a campaign did, for callers and the CLI exit path."""

    lattice_size: int
    valid_points: int
    records: List[Dict[str, Any]] = field(default_factory=list)
    ok: int = 0
    failed: int = 0
    planned: int = 0
    out: Optional[str] = None

    def summary(self) -> str:
        text = (
            f"sweep: {self.valid_points}/{self.lattice_size} lattice points "
            f"valid"
        )
        if self.planned:
            text += f", {self.planned} planned (dry run)"
        else:
            text += f", {self.ok} ok, {self.failed} failed"
        if self.out:
            text += f" -> {self.out}"
        return text


def load_axes(path: str) -> Dict[str, List[Any]]:
    """Read an axes file (JSON always; YAML when PyYAML is importable)."""
    with open(path) as fh:
        text = fh.read()
    if path.endswith((".yaml", ".yml")):
        try:
            import yaml
        except ImportError as exc:  # pragma: no cover - env without yaml
            raise ValueError(
                f"axes file {path!r} is YAML but PyYAML is not installed; "
                "use a JSON axes file instead"
            ) from exc
        data = yaml.safe_load(text)
    else:
        data = json.loads(text)
    if not isinstance(data, Mapping):
        raise ValueError(
            f"axes file {path!r} must be a mapping of knob name -> value "
            f"list, got {type(data).__name__}"
        )
    axes: Dict[str, List[Any]] = {}
    for name, values in data.items():
        if isinstance(values, (str, bytes)) or not isinstance(
            values, Sequence
        ):
            raise ValueError(
                f"axis {name!r} must be a list of values, got {values!r}"
            )
        axes[str(name)] = list(values)
    return axes


def _split_point(
    point: Mapping[str, Any]
) -> "tuple[Dict[str, Any], Dict[str, Any]]":
    gen = {
        name[len("gen."):]: value
        for name, value in point.items()
        if name.startswith("gen.")
    }
    leg = {
        name: value
        for name, value in point.items()
        if not name.startswith("gen.")
    }
    return leg, gen


def _metric_values(snapshot: Mapping[str, Mapping[str, Any]]) -> Dict[str, Any]:
    return {
        name: snap.get("value", snap.get("count", snap))
        for name, snap in snapshot.items()
    }


def _execute_point(
    index: int,
    point: Mapping[str, Any],
    opts: SweepOptions,
) -> Dict[str, Any]:
    from repro import telemetry
    from repro.benchgen import make_benchmark
    from repro.core.legalizer import LegalizerConfig, MMSIMLegalizer
    from repro.telemetry import solver_iteration_counts

    leg_overrides, gen_overrides = _split_point(point)
    gen_args = {"scale": opts.scale, "seed": opts.seed}
    gen_args.update(gen_overrides)
    record: Dict[str, Any] = {
        "record": "point",
        "index": index,
        "overrides": dict(point),
    }
    try:
        design = make_benchmark(opts.benchmark, **gen_args)
        config = LegalizerConfig(**leg_overrides)
        with telemetry.session() as tel:
            result = MMSIMLegalizer(config).legalize(design)
        record["status"] = "ok"
        record["result"] = {
            "design": result.design_name,
            "num_cells": result.num_cells,
            "converged": result.converged,
            "iterations": result.iterations,
            "num_illegal": result.num_illegal,
            "audit_clean": result.audit_clean,
            "runtime_seconds": result.runtime,
            "qp_objective": result.qp_objective,
            "escalations": len(result.solver_escalations),
            "displacement_sites": (
                result.displacement.total_manhattan_sites
                if result.displacement is not None
                else None
            ),
            "delta_hpwl_percent": (
                result.wirelength.delta_hpwl_percent
                if result.wirelength is not None
                else None
            ),
        }
        record["telemetry"] = {
            "metrics": _metric_values(tel.metrics.snapshot()),
            "solver_iterations": solver_iteration_counts(
                tel.events.events() if tel.events is not None else []
            ),
        }
    except Exception as exc:  # noqa: BLE001 — one bad point must not
        # kill the campaign; the record carries the failure.
        record["status"] = "error"
        record["error"] = f"{type(exc).__name__}: {exc}"
    return record


def run_sweep(
    axes: Mapping[str, Sequence[Any]],
    opts: Optional[SweepOptions] = None,
    progress: Optional[TextIO] = None,
) -> SweepSummary:
    """Expand *axes* and run (or plan) the campaign.

    Raises ``ValueError`` for unknown axis names or ill-typed axis
    values (via ``enumerate_valid``); domain- or constraint-invalid
    *combinations* are silently pruned from the lattice.
    """
    opts = opts or SweepOptions()
    points = SWEEP_SPEC.enumerate_valid(axes)
    lattice_size = 1
    for values in axes.values():
        lattice_size *= max(len(values), 1)
    summary = SweepSummary(
        lattice_size=lattice_size, valid_points=len(points), out=opts.out
    )
    if opts.limit is not None:
        points = points[: opts.limit]
    header: Dict[str, Any] = {
        "record": "campaign",
        "spec": SWEEP_SPEC.name,
        "benchmark": opts.benchmark,
        "scale": opts.scale,
        "seed": opts.seed,
        "axes": {name: list(values) for name, values in axes.items()},
        "lattice_size": lattice_size,
        "valid_points": summary.valid_points,
        "executed_points": len(points),
        "dry_run": opts.dry_run,
    }
    summary.records.append(header)
    for index, point in enumerate(points):
        if opts.dry_run:
            record = {
                "record": "point",
                "index": index,
                "status": "planned",
                "overrides": dict(point),
            }
            summary.planned += 1
        else:
            record = _execute_point(index, point, opts)
            if record["status"] == "ok":
                summary.ok += 1
            else:
                summary.failed += 1
        summary.records.append(record)
        if progress is not None:
            status = record["status"]
            progress.write(
                f"sweep point {index + 1}/{len(points)}: {status} "
                f"{record['overrides']}\n"
            )
            progress.flush()
    if opts.out:
        with open(opts.out, "w") as fh:
            for record in summary.records:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
    return summary


__all__ = ["SweepOptions", "SweepSummary", "load_axes", "run_sweep"]
