"""Declarative configuration specs: typed knobs + cross-field constraints.

The flow's configuration surface (``LegalizerConfig``, the service
knobs, the benchmark generator) is described *declaratively*: every knob
is a :class:`ConfigVar` carrying its accepted types, value domain,
default and documentation, and every cross-field rule (``parallel``
requires ``shard``, fault injection requires the fallback ladder, ...)
is a :class:`Constraint`.  A :class:`ScenarioSpec` bundles them and is
the single source of truth that every entry boundary consults:

* ``LegalizerConfig.__post_init__`` raises ``ValueError`` with the
  violation list,
* the service protocol turns the same violations into
  ``ProtocolError`` → HTTP 400 before a config ever reaches a worker,
* the CLI exits 2 with the same messages,
* the fuzz harness generates its differential-oracle matrix from the
  spec (:mod:`repro.scenario.matrix`) instead of a hand-kept list,
* ``repro sweep`` expands axes files through :meth:`ScenarioSpec.
  enumerate_valid` into telemetry-backed campaigns
  (:mod:`repro.scenario.sweep`).

The idiom follows the staged, constraint-validated ``ConfigVar`` layer
of ProConPy/visualCaseGen: knobs declare their lattice once, and both
validation and enumeration fall out of the same declaration.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, fields as dc_fields, is_dataclass, replace
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)


@dataclass(frozen=True)
class ConfigViolation:
    """One way a configuration fails its spec.

    ``field`` names the offending knob (comma-joined for cross-field
    constraints), ``code`` classifies the failure (``unknown`` /
    ``type`` / ``domain`` / ``constraint``), and ``message`` is the
    human-readable sentence every boundary surfaces verbatim — the
    dataclass ``ValueError``, the service 400 payload and the CLI
    stderr all print the same text.
    """

    field: str
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.field}: {self.message}"


def format_violations(violations: Sequence[ConfigViolation]) -> str:
    return "; ".join(str(v) for v in violations)


# ----------------------------------------------------------------------
# Value domains
# ----------------------------------------------------------------------
class Domain:
    """The set of acceptable values for one knob (beyond its type)."""

    def check(self, value: Any) -> Optional[str]:
        """Error message when *value* is outside the domain, else None."""
        return None

    def describe(self) -> str:
        return "any"


class Anything(Domain):
    pass


@dataclass(frozen=True)
class Choice(Domain):
    """A finite enumeration; ``choices`` may be a callable for domains
    that grow at runtime (e.g. the kernel-backend registry)."""

    choices: Any  # tuple | Callable[[], Sequence]

    def _values(self) -> Tuple[Any, ...]:
        raw = self.choices() if callable(self.choices) else self.choices
        return tuple(raw)

    def check(self, value: Any) -> Optional[str]:
        values = self._values()
        if value not in values:
            return f"must be one of {sorted(map(repr, values))}, got {value!r}"
        return None

    def describe(self) -> str:
        return "one of " + ", ".join(f"`{v}`" for v in self._values())


@dataclass(frozen=True)
class Range(Domain):
    """A (half-)open or closed numeric interval.

    ``lo``/``hi`` of None mean unbounded on that side; ``lo_open`` /
    ``hi_open`` exclude the endpoint (``Range(0.0, 1.0, lo_open=True,
    hi_open=True)`` is the open interval (0, 1)).
    """

    lo: Optional[float] = None
    hi: Optional[float] = None
    lo_open: bool = False
    hi_open: bool = False

    def check(self, value: Any) -> Optional[str]:
        if self.lo is not None:
            if self.lo_open and not value > self.lo:
                return f"must be > {self.lo:g}, got {value!r}"
            if not self.lo_open and not value >= self.lo:
                return f"must be >= {self.lo:g}, got {value!r}"
        if self.hi is not None:
            if self.hi_open and not value < self.hi:
                return f"must be < {self.hi:g}, got {value!r}"
            if not self.hi_open and not value <= self.hi:
                return f"must be <= {self.hi:g}, got {value!r}"
        return None

    def describe(self) -> str:
        lo = "-inf" if self.lo is None else f"{self.lo:g}"
        hi = "inf" if self.hi is None else f"{self.hi:g}"
        return ("(" if self.lo_open or self.lo is None else "[") + \
            f"{lo}, {hi}" + (")" if self.hi_open or self.hi is None else "]")


# ----------------------------------------------------------------------
# Knobs
# ----------------------------------------------------------------------
_TYPE_NAMES = {bool: "bool", int: "int", float: "float", str: "str"}


def _type_name(t: type) -> str:
    return _TYPE_NAMES.get(t, t.__name__)


@dataclass(frozen=True)
class ConfigVar:
    """One typed configuration knob: accepted types, domain, default, doc.

    ``types`` is the tuple of accepted Python types.  ``bool`` is never
    accepted implicitly through ``int`` (so ``"shard": 1`` and
    ``"lam": True`` are both type violations), and ``float`` knobs
    accept ``int`` values.  ``nullable`` additionally admits ``None``
    (the domain is then only checked on non-None values).
    """

    name: str
    types: Tuple[type, ...]
    default: Any
    doc: str
    domain: Domain = field(default_factory=Anything)
    nullable: bool = False

    def _type_ok(self, value: Any) -> bool:
        if isinstance(value, bool):
            return bool in self.types
        if isinstance(value, int) and (int in self.types or float in self.types):
            return True
        return isinstance(value, self.types)

    def type_label(self) -> str:
        label = " | ".join(_type_name(t) for t in self.types)
        return f"{label} | None" if self.nullable else label

    def validate(self, value: Any) -> Optional[ConfigViolation]:
        if value is None:
            if self.nullable:
                return None
            return ConfigViolation(
                self.name, "type",
                f"must be {self.type_label()}, got None",
            )
        if not self._type_ok(value):
            return ConfigViolation(
                self.name, "type",
                f"must be {self.type_label()}, "
                f"got {type(value).__name__} {value!r}",
            )
        error = self.domain.check(value)
        if error is not None:
            return ConfigViolation(self.name, "domain", error)
        return None

    def renamed(self, name: str) -> "ConfigVar":
        return replace(self, name=name)


# ----------------------------------------------------------------------
# Cross-field constraints
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Constraint:
    """One cross-field rule over a full (defaults-merged) configuration.

    ``predicate`` receives the merged config mapping and returns True
    when the rule is satisfied.  ``fields`` names every knob the rule
    reads — used for reporting and by :meth:`ScenarioSpec.self_check`.
    """

    fields: Tuple[str, ...]
    kind: str  # "requires" | "conflicts" | "rule"
    message: str
    predicate: Callable[[Mapping[str, Any]], bool]

    def check(self, config: Mapping[str, Any]) -> Optional[ConfigViolation]:
        if self.predicate(config):
            return None
        return ConfigViolation(",".join(self.fields), "constraint", self.message)


def _truthy(value: Any) -> bool:
    return bool(value)


def requires(a: str, b: str, message: Optional[str] = None) -> Constraint:
    """``a`` enabled ⇒ ``b`` enabled (a truthy knob implies another)."""
    return Constraint(
        fields=(a, b),
        kind="requires",
        message=message or f"{a}=True requires {b}=True",
        predicate=lambda c: not _truthy(c.get(a)) or _truthy(c.get(b)),
    )


def conflicts(a: str, b: str, message: Optional[str] = None) -> Constraint:
    """``a`` and ``b`` must not both be enabled."""
    return Constraint(
        fields=(a, b),
        kind="conflicts",
        message=message or f"{a}=True conflicts with {b}=True",
        predicate=lambda c: not (_truthy(c.get(a)) and _truthy(c.get(b))),
    )


def rule(
    fields_: Sequence[str],
    predicate: Callable[[Mapping[str, Any]], bool],
    message: str,
) -> Constraint:
    """A free-form constraint over *fields_* (True = satisfied)."""
    return Constraint(
        fields=tuple(fields_), kind="rule", message=message, predicate=predicate
    )


# ----------------------------------------------------------------------
# The spec
# ----------------------------------------------------------------------
class ScenarioSpec:
    """A named bundle of :class:`ConfigVar` knobs + :class:`Constraint` rules.

    ``validate`` is the single entry point every boundary shares;
    ``enumerate_valid`` expands an axes mapping into the valid sublattice
    (used by the fuzz-oracle matrix and ``repro sweep``); ``self_check``
    is the CI gate that keeps the spec and its mirrored dataclass in
    lockstep.
    """

    def __init__(
        self,
        name: str,
        variables: Iterable[ConfigVar],
        constraints: Iterable[Constraint] = (),
    ) -> None:
        self.name = name
        self.variables: Dict[str, ConfigVar] = {}
        for var in variables:
            if var.name in self.variables:
                raise ValueError(f"duplicate ConfigVar {var.name!r}")
            self.variables[var.name] = var
        self.constraints: List[Constraint] = list(constraints)

    # ------------------------------------------------------------- access
    def __contains__(self, name: str) -> bool:
        return name in self.variables

    def var(self, name: str) -> ConfigVar:
        return self.variables[name]

    def defaults(self) -> Dict[str, Any]:
        return {name: var.default for name, var in self.variables.items()}

    # ----------------------------------------------------------- validate
    def validate(self, config: Any) -> List[ConfigViolation]:
        """All the ways *config* violates this spec (empty = valid).

        *config* is a mapping of overrides (absent knobs take their
        defaults) or a dataclass instance (every declared knob is read
        with ``getattr``).  Per-knob type/domain checks run first;
        cross-field constraints are only evaluated when every knob they
        read passed (a constraint over an ill-typed value would just
        duplicate the type error, or crash comparing strings to floats).
        """
        provided = self._as_mapping(config)
        violations: List[ConfigViolation] = []
        bad_fields = set()
        for name in provided:
            if name not in self.variables:
                violations.append(ConfigViolation(
                    name, "unknown",
                    f"unknown {self.name} field (known: "
                    f"{sorted(self.variables)})",
                ))
                bad_fields.add(name)
        for name, value in provided.items():
            if name in bad_fields:
                continue
            violation = self.variables[name].validate(value)
            if violation is not None:
                violations.append(violation)
                bad_fields.add(name)
        merged = self.defaults()
        merged.update(
            {k: v for k, v in provided.items() if k not in bad_fields}
        )
        for constraint in self.constraints:
            if any(f in bad_fields for f in constraint.fields):
                continue
            violation = constraint.check(merged)
            if violation is not None:
                violations.append(violation)
        return violations

    def _as_mapping(self, config: Any) -> Dict[str, Any]:
        if isinstance(config, Mapping):
            return dict(config)
        if is_dataclass(config) and not isinstance(config, type):
            return {
                name: getattr(config, name)
                for name in self.variables
                if hasattr(config, name)
            }
        raise TypeError(
            f"expected a mapping or dataclass instance, got {type(config).__name__}"
        )

    # ---------------------------------------------------------- enumerate
    def enumerate_valid(
        self, axes: Mapping[str, Sequence[Any]]
    ) -> List[Dict[str, Any]]:
        """Expand *axes* into every valid point of the knob lattice.

        ``axes`` maps knob names to candidate value lists; the result is
        the cartesian product restricted to points :meth:`validate`
        accepts, in deterministic product order (last axis fastest).
        Axis values that fail their knob's *type* check raise
        immediately (a typo'd axes file should not silently produce an
        empty campaign); points dropped by *domain or constraint*
        violations are skipped silently — pruning invalid combinations
        is the method's purpose.
        """
        names = list(axes)
        for name in names:
            if name not in self.variables:
                raise ValueError(
                    f"unknown {self.name} axis {name!r} "
                    f"(known: {sorted(self.variables)})"
                )
            values = axes[name]
            if isinstance(values, (str, bytes)) or not isinstance(
                values, Sequence
            ):
                raise ValueError(
                    f"axis {name!r} must be a list of values, got {values!r}"
                )
            for value in values:
                violation = self.variables[name].validate(value)
                if violation is not None and violation.code == "type":
                    raise ValueError(f"axis {violation}")
        points: List[Dict[str, Any]] = []
        for combo in itertools.product(*(axes[name] for name in names)):
            point = dict(zip(names, combo))
            if not self.validate(point):
                points.append(point)
        return points

    # ---------------------------------------------------------- self-check
    def self_check(self, mirror: Any = None) -> List[str]:
        """Internal-consistency problems (empty = healthy).

        Checks that the defaults themselves validate, that every
        constraint only references declared knobs, and — when *mirror*
        is given (a dataclass type this spec shadows, e.g.
        ``LegalizerConfig``) — that the spec and the dataclass agree
        field-for-field and default-for-default, so a knob added to one
        side without the other fails CI.
        """
        problems: List[str] = []
        for violation in self.validate(self.defaults()):
            problems.append(f"default config invalid: {violation}")
        for constraint in self.constraints:
            for name in constraint.fields:
                if name not in self.variables:
                    problems.append(
                        f"constraint {constraint.message!r} references "
                        f"undeclared field {name!r}"
                    )
        for name, var in self.variables.items():
            if not var.doc.strip():
                problems.append(f"field {name!r} has no doc string")
        if mirror is not None:
            mirror_fields = {f.name: f for f in dc_fields(mirror)}
            for name in mirror_fields:
                if name not in self.variables:
                    problems.append(
                        f"{mirror.__name__}.{name} is not declared in the "
                        f"{self.name} spec"
                    )
            for name, var in self.variables.items():
                if name not in mirror_fields:
                    problems.append(
                        f"spec field {name!r} does not exist on "
                        f"{mirror.__name__}"
                    )
                    continue
                mirror_default = _dataclass_default(mirror_fields[name])
                if mirror_default is not _NO_DEFAULT and (
                    mirror_default is not var.default
                    and mirror_default != var.default
                ):
                    problems.append(
                        f"default mismatch for {name!r}: spec has "
                        f"{var.default!r}, {mirror.__name__} has "
                        f"{mirror_default!r}"
                    )
        return problems

    # --------------------------------------------------------------- docs
    def knob_table(self) -> str:
        """The knob reference as a GitHub-markdown table."""
        lines = [
            "| knob | type | domain | default | description |",
            "| --- | --- | --- | --- | --- |",
        ]
        for name, var in self.variables.items():
            domain = var.domain.describe()
            if isinstance(var.domain, Anything):
                domain = "—"
            doc = " ".join(var.doc.split())
            type_label = var.type_label().replace("|", "\\|")
            lines.append(
                f"| `{name}` | {type_label} | {domain} "
                f"| `{var.default!r}` | {doc} |"
            )
        return "\n".join(lines)

    def constraint_table(self) -> str:
        """The cross-field rules as a markdown bullet list."""
        return "\n".join(
            f"- **{c.kind}** (`{', '.join(c.fields)}`): {c.message}"
            for c in self.constraints
        )


_NO_DEFAULT = object()


def _dataclass_default(f) -> Any:
    import dataclasses

    if f.default is not dataclasses.MISSING:
        return f.default
    if f.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
        return f.default_factory()  # type: ignore[misc]
    return _NO_DEFAULT


def combine_specs(
    name: str, parts: Sequence[Tuple[str, "ScenarioSpec"]]
) -> "ScenarioSpec":
    """Merge several specs into one, prefixing each part's knob names.

    Constraints are carried over only from parts with an empty prefix
    (a prefixed constraint would need its field references rewritten;
    none of the current prefixed parts declare any).
    """
    variables: List[ConfigVar] = []
    constraints: List[Constraint] = []
    for prefix, spec in parts:
        for var_name, var in spec.variables.items():
            variables.append(var.renamed(prefix + var_name))
        if not prefix:
            constraints.extend(spec.constraints)
        elif spec.constraints:
            raise ValueError(
                f"cannot prefix spec {spec.name!r}: it declares "
                "cross-field constraints"
            )
    return ScenarioSpec(name, variables, constraints)


__all__ = [
    "Anything",
    "Choice",
    "ConfigVar",
    "ConfigViolation",
    "Constraint",
    "Domain",
    "Range",
    "ScenarioSpec",
    "combine_specs",
    "conflicts",
    "format_violations",
    "requires",
    "rule",
]
