"""The repo's concrete scenario specs.

One :class:`~repro.scenario.spec.ScenarioSpec` per configuration
surface:

* :data:`LEGALIZER_SPEC` shadows :class:`repro.core.legalizer.
  LegalizerConfig` knob-for-knob (CI's spec self-check fails when they
  drift),
* :data:`SERVICE_SPEC` shadows :class:`repro.service.server.
  ServiceConfig`,
* :data:`BENCHGEN_SPEC` covers the :func:`repro.benchgen.make_benchmark`
  generator knobs,
* :data:`SWEEP_SPEC` is the campaign lattice ``repro sweep`` expands:
  every legalizer knob plus the benchgen knobs under a ``gen.`` prefix.

This module must not import :mod:`repro.core.legalizer` at module level:
``LegalizerConfig.__post_init__`` imports *us* for validation, so the
dependency has to stay one-way (kernel-backend names are resolved
through a lazy callable for the same reason).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.resilience import ResilienceConfig
from repro.scenario.spec import (
    Choice,
    ConfigVar,
    Range,
    ScenarioSpec,
    combine_specs,
    requires,
    rule,
)


def _kernel_backend_names():
    # Lazy: the registry is mutable at runtime (tests register throwaway
    # backends) and repro.kernels must not be imported at spec-import time.
    from repro.kernels import known_backend_names

    return known_backend_names()


def _inject_requires_fallback(config: Mapping[str, Any]) -> bool:
    inject = getattr(config.get("resilience"), "inject", None)
    return not inject or bool(config.get("fallback"))


LEGALIZER_SPEC = ScenarioSpec(
    "legalizer",
    [
        ConfigVar(
            "lam", (float,), 1000.0,
            "Soft-constraint weight λ of the relaxed QP "
            "(paper Section 5 uses 1000).",
            Range(0.0, lo_open=True),
        ),
        ConfigVar(
            "beta", (float,), 0.5,
            "Matrix-splitting parameter β* of the MMSIM Eq.(16) scheme; "
            "Theorem 2 requires it strictly inside (0, 1).",
            Range(0.0, 1.0, lo_open=True, hi_open=True),
        ),
        ConfigVar(
            "theta", (float,), 0.5,
            "Matrix-splitting parameter θ* of the MMSIM Eq.(16) scheme; "
            "Theorem 2 requires it strictly inside (0, 1).",
            Range(0.0, 1.0, lo_open=True, hi_open=True),
        ),
        ConfigVar(
            "gamma", (float,), 2.0,
            "Regularization weight of the splitting's diagonal shift.",
            Range(0.0, lo_open=True),
        ),
        ConfigVar(
            "tol", (float,), 1e-3,
            "MMSIM stopping tolerance on the iterate delta (site-snapped "
            "output cannot resolve below ~1e-3 site widths).",
            Range(0.0, lo_open=True),
        ),
        ConfigVar(
            "residual_tol", (float,), 1e-2,
            "Natural-residual certificate bound checked after "
            "convergence; None skips the check.",
            Range(0.0, lo_open=True), nullable=True,
        ),
        ConfigVar(
            "max_iterations", (int,), 20000,
            "MMSIM sweep cap per (sub)problem.",
            Range(1),
        ),
        ConfigVar(
            "warm_start", (bool,), True,
            "Start the MMSIM from the GP positions (or an accepted "
            "persisted state) instead of zero.",
        ),
        ConfigVar(
            "validate_theorem2", (bool,), False,
            "Verify the Theorem 2 spectral-radius contraction bound on "
            "the assembled splitting (slow; diagnostics only).",
        ),
        ConfigVar(
            "record_history", (bool,), False,
            "Deprecated: populate LegalizationResult.residual_history "
            "(telemetry iteration events supersede it).",
        ),
        ConfigVar(
            "balance_rows", (bool,), False,
            "Extension: shift cells out of over-capacity rows before the "
            "MMSIM to reduce right-boundary spill.",
        ),
        ConfigVar(
            "enforce_right_boundary", (bool,), False,
            "Extension: add exact right-boundary rows for every row "
            "whose cells fit (the paper's relaxation is the default).",
        ),
        ConfigVar(
            "shard", (bool,), True,
            "Shard the KKT LCP into independent coupling-graph "
            "components and solve them separately (exact).",
        ),
        ConfigVar(
            "parallel", (bool,), False,
            "Solve shards concurrently on a thread pool; requires "
            "shard=True (rejected otherwise — a monolithic solve has "
            "nothing to parallelize).",
        ),
        ConfigVar(
            "max_workers", (int,), None,
            "Thread-pool size for parallel; None lets the executor pick.",
            Range(1), nullable=True,
        ),
        ConfigVar(
            "min_shard_variables", (int,), 256,
            "Batch tiny coupling components into shards of at least this "
            "many variables (ignored when batch_micro_shards routes "
            "micro-shards through the batched engine instead).",
            Range(1),
        ),
        ConfigVar(
            "batch_micro_shards", (bool,), False,
            "Route micro-shards through the batched group engine; "
            "requires shard=True (there are no shards to batch "
            "otherwise).",
        ),
        ConfigVar(
            "batch_signature_buckets", (int,), 8,
            "log2 size-bucket cap of the batching signature.",
            Range(1),
        ),
        ConfigVar(
            "fast_kernels", (bool,), True,
            "Closed-form Woodbury + LAPACK banded + fused-sweep kernels; "
            "False restores the pre-optimization SuperLU path.",
        ),
        ConfigVar(
            "fallback", (bool,), True,
            "Per-shard solver fallback ladder (safe MMSIM → PSOR → "
            "Lemke → clamp) for shards that fail to converge.",
        ),
        ConfigVar(
            "resilience", (ResilienceConfig,), None,
            "Fallback-ladder tunables and the fault-injection hook; "
            "injection requires fallback=True.",
            nullable=True,
        ),
        ConfigVar(
            "kernel_backend", (str,), "reference",
            "Sweep-kernel backend for the MMSIM inner loops (see "
            "repro.kernels; non-reference backends are probe-verified).",
            Choice(_kernel_backend_names),
        ),
    ],
    [
        requires(
            "parallel", "shard",
            "parallel=True requires shard=True (a monolithic solve has "
            "no shards to run concurrently; it would silently no-op)",
        ),
        requires(
            "batch_micro_shards", "shard",
            "batch_micro_shards=True requires shard=True (there are no "
            "micro-shards to batch without sharding; it would silently "
            "no-op)",
        ),
        rule(
            ("resilience", "fallback"),
            _inject_requires_fallback,
            "resilience.inject is set but fallback=False: injected "
            "faults would have no ladder to escalate through",
        ),
    ],
)


SERVICE_SPEC = ScenarioSpec(
    "service",
    [
        ConfigVar("host", (str,), "127.0.0.1", "Bind address."),
        ConfigVar(
            "port", (int,), 8787,
            "Bind port; 0 binds an ephemeral port.",
            Range(0, 65535),
        ),
        ConfigVar(
            "queue_limit", (int,), 64,
            "Bounded job queue; a full queue answers 429 + Retry-After. "
            "Must admit at least one job.",
            Range(1),
        ),
        ConfigVar(
            "batch_window_seconds", (float,), 0.02,
            "How long the batcher waits for more jobs to share a solve "
            "with.",
            Range(0.0),
        ),
        ConfigVar(
            "max_batch", (int,), 16,
            "Cap on jobs per stacked solve.",
            Range(1),
        ),
        ConfigVar(
            "workers", (int,), 2,
            "Worker threads executing batches.",
            Range(1),
        ),
        ConfigVar(
            "default_deadline_seconds", (float,), None,
            "Deadline applied when a request does not send one; "
            "None = none.",
            Range(0.0, lo_open=True), nullable=True,
        ),
        ConfigVar(
            "retry_after_seconds", (float,), 1.0,
            "Hint sent in 429 responses.",
            Range(0.0, lo_open=True),
        ),
        ConfigVar(
            "merge", (bool,), True,
            "Merge compatible designs into stacked solves.",
        ),
        ConfigVar(
            "store_max_entries", (int,), 1024,
            "Warm-state store entry cap; None = unbounded.",
            Range(1), nullable=True,
        ),
        ConfigVar(
            "store_max_bytes", (int,), 256 * 1024 * 1024,
            "Warm-state store byte cap; None = unbounded.",
            Range(1), nullable=True,
        ),
        ConfigVar(
            "store_ttl_seconds", (float,), None,
            "Warm-state entry time-to-live; None = no expiry.",
            Range(0.0, lo_open=True), nullable=True,
        ),
        ConfigVar(
            "latency_reservoir", (int,), 1024,
            "Latency samples kept for the /stats percentiles.",
            Range(1),
        ),
    ],
)


BENCHGEN_SPEC = ScenarioSpec(
    "benchgen",
    [
        ConfigVar(
            "scale", (float,), 0.02,
            "Design size as a fraction of the paper's Table 1 profiles.",
            Range(0.0, lo_open=True),
        ),
        ConfigVar("seed", (int,), 0, "Generator RNG seed.", Range(0)),
        ConfigVar(
            "mixed", (bool,), True,
            "Mixed-cell-height population (False = single-row only).",
        ),
        ConfigVar(
            "with_nets", (bool,), True,
            "Attach a synthetic netlist (needed for HPWL metrics).",
        ),
        ConfigVar(
            "fences", (int,), 0,
            "Number of fence regions to carve.",
            Range(0),
        ),
        ConfigVar(
            "macro_fraction", (float,), 0.0,
            "Fraction of area given to fixed macro obstacles.",
            Range(0.0, 1.0, hi_open=True),
        ),
    ],
)


#: The campaign lattice ``repro sweep`` expands: legalizer knobs plus
#: the benchmark-generator knobs under a ``gen.`` prefix.
SWEEP_SPEC = combine_specs(
    "sweep", [("", LEGALIZER_SPEC), ("gen.", BENCHGEN_SPEC)]
)


__all__ = ["BENCHGEN_SPEC", "LEGALIZER_SPEC", "SERVICE_SPEC", "SWEEP_SPEC"]
