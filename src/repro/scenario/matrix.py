"""The fuzz-oracle configuration matrix, generated from the spec.

:func:`repro.fuzz.oracle.oracle_configs` used to hand-maintain its
~16-entry differential matrix; it now consumes :func:`oracle_matrix`,
whose points are expanded through
:meth:`~repro.scenario.spec.ScenarioSpec.enumerate_valid` on
:data:`~repro.scenario.specs.LEGALIZER_SPEC` — so an invalid combination
can never enter the matrix, and :func:`matrix_self_check` (run by CI's
``repro spec check``) fails the build when a new ``LegalizerConfig``
knob is neither swept by a point, pinned by the oracle base, nor
explicitly exempted with a reason.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.core.resilience import ResilienceConfig
from repro.scenario.specs import LEGALIZER_SPEC


@dataclass(frozen=True)
class OraclePoint:
    """One differential-oracle configuration.

    ``overrides`` are the knobs this point changes relative to the
    oracle's base config (tight tolerances + single-component shards);
    ``group`` is its comparison class (``identity`` must match the
    baseline bit-for-bit, ``identity_healthy`` only on escalation-free
    baselines, ``tolerance`` within solver tolerance, ``sliced`` the
    fence-slice refinement).  ``pseudo`` marks points the oracle runner
    executes specially (setup-reuse rerun, fence slicing) rather than as
    a plain extra configuration.
    """

    name: str
    group: str
    overrides: Mapping[str, Any] = field(default_factory=dict)
    pseudo: bool = False


def _inject(*rungs: str) -> ResilienceConfig:
    return ResilienceConfig(inject={"*": tuple(rungs)}, safe_iteration_factor=1.0)


def _one(axes: Mapping[str, Sequence[Any]]) -> Dict[str, Any]:
    """Expand *axes* expecting exactly one surviving valid point."""
    points = LEGALIZER_SPEC.enumerate_valid(axes)
    if len(points) != 1:
        raise AssertionError(
            f"oracle axes {axes!r} expanded to {len(points)} valid points, "
            "expected exactly 1"
        )
    return points[0]


#: The identity square: the batched and parallel engines promise
#: bit-identity against the plain sharded baseline, alone and combined.
_SQUARE_AXES: Dict[str, Tuple[Any, ...]] = {
    "batch_micro_shards": (False, True),
    "parallel": (False, True),
}

_SQUARE_NAMES = {
    (False, False): "baseline",
    (True, False): "batch",
    (False, True): "parallel",
    (True, True): "batch_parallel",
}

#: (name, axes, group) rows expanded one-factor-at-a-time.
_ONE_FACTOR: Tuple[Tuple[str, Dict[str, Tuple[Any, ...]], str], ...] = (
    ("merged_shards", {"min_shard_variables": (256,)}, "tolerance"),
    ("no_fallback", {"fallback": (False,)}, "identity_healthy"),
    ("monolithic", {"shard": (False,)}, "tolerance"),
    ("slow_kernels", {"fast_kernels": (False,)}, "tolerance"),
)

#: Escalation-ladder rungs forced by fault injection; each run must
#: still land on the same QP optimum (tolerance group).
_LADDER: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("inject_safe", ("mmsim",)),
    ("inject_psor", ("mmsim", "mmsim_safe")),
    ("inject_lemke", ("mmsim", "mmsim_safe", "psor")),
)

#: Knobs the oracle base pins for every point (tight tolerances so
#: group comparisons are meaningful; single-component shards because
#: that is the granularity whose bit-identity the engines promise).
BASE_OVERRIDDEN = frozenset(
    {
        "lam",
        "tol",
        "residual_tol",
        "max_iterations",
        "min_shard_variables",
        "resilience",
    }
)

#: Knobs deliberately not swept by the matrix, with the reason — a new
#: LegalizerConfig field must land here, in BASE_OVERRIDDEN, or in some
#: point's overrides, or matrix_self_check fails the build.
MATRIX_EXEMPT: Dict[str, str] = {
    "beta": "splitting parameter: changing it changes the iteration, not "
            "the optimum; covered by Theorem-2 unit tests",
    "theta": "splitting parameter: same as beta",
    "gamma": "regularization weight: same as beta",
    "warm_start": "exercised by the oracle's warm_start/stale_state "
                  "special checks, not as a matrix column",
    "validate_theorem2": "diagnostics-only flag; adds checks, never "
                         "changes results",
    "record_history": "deprecated observability flag",
    "balance_rows": "extension that changes the target placement — no "
                    "differential group applies",
    "enforce_right_boundary": "extension that changes the QP itself — no "
                              "differential group applies",
    "batch_signature_buckets": "batching granularity; bit-identity over "
                               "bucket sizes is covered by the batched-"
                               "engine unit tests",
}


def _square_points() -> List[OraclePoint]:
    points = LEGALIZER_SPEC.enumerate_valid(_SQUARE_AXES)
    by_name: Dict[str, OraclePoint] = {}
    for point in points:
        key = (point["batch_micro_shards"], point["parallel"])
        name = _SQUARE_NAMES[key]
        overrides = {k: v for k, v in point.items() if v}
        if point["parallel"]:
            overrides["max_workers"] = 4
        group = "baseline" if name == "baseline" else "identity"
        by_name[name] = OraclePoint(name, group, overrides)
    ordered = ["baseline", "batch", "parallel", "batch_parallel"]
    missing = [n for n in ordered if n not in by_name]
    if missing:
        raise AssertionError(
            f"identity square lost points {missing}: a spec constraint "
            "now rejects part of the batched/parallel lattice"
        )
    return [by_name[n] for n in ordered]


def oracle_matrix() -> List[OraclePoint]:
    """The live oracle matrix, baseline first.

    The ``numba_kernel`` point appears only when the numba backend
    reports itself available, mirroring what the oracle can actually
    run.
    """
    square = _square_points()
    one_factor = [
        OraclePoint(name, group, _one(axes))
        for name, axes, group in _ONE_FACTOR
    ]
    matrix: List[OraclePoint] = [square[0], one_factor[0]]
    matrix.extend(square[1:])
    matrix.extend(one_factor[1:])
    for name, rungs in _LADDER:
        point = _one({"resilience": (_inject(*rungs),)})
        matrix.append(OraclePoint(name, "tolerance", point))
    # Non-reference sweep-kernel backends, routed through the batched
    # engine (their main production surface).  Only the stock optional
    # backends: test suites register throwaway backends at runtime, and
    # those must not leak into the differential matrix.
    from repro.kernels import get_backend

    kernel_backends = ["fused"]
    if get_backend("numba").available():  # pragma: no cover - needs numba
        kernel_backends.append("numba")
    kernel_points = [
        OraclePoint(
            f"{backend}_kernel",
            "tolerance",
            _one({
                "kernel_backend": (backend,),
                "batch_micro_shards": (True,),
            }),
        )
        for backend in kernel_backends
    ]
    matrix.append(kernel_points[0])
    matrix.append(OraclePoint("reuse", "identity", {}, pseudo=True))
    matrix.append(OraclePoint("fence_slices", "sliced", {}, pseudo=True))
    matrix.extend(kernel_points[1:])
    return matrix


def matrix_self_check() -> List[str]:
    """Consistency problems in the generated matrix (empty = healthy).

    Verifies that every point validates against the legalizer spec,
    that the baseline leads, that names are unique, that every
    ``LegalizerConfig`` knob is swept / base-pinned / exempted, and
    that the matrix agrees name-for-name and group-for-group with the
    fuzz harness's live :func:`repro.fuzz.oracle.oracle_configs` list.
    """
    problems: List[str] = []
    matrix = oracle_matrix()

    names = [p.name for p in matrix]
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        problems.append(f"duplicate oracle point names: {dupes}")
    if not matrix or matrix[0].name != "baseline" or matrix[0].overrides:
        problems.append(
            "the oracle matrix must start with the empty-override "
            "baseline (run_oracle_design indexes it)"
        )
    for point in matrix:
        for violation in LEGALIZER_SPEC.validate(dict(point.overrides)):
            problems.append(f"point {point.name!r} invalid: {violation}")
        if point.group not in (
            "baseline", "identity", "identity_healthy", "tolerance", "sliced"
        ):
            problems.append(
                f"point {point.name!r} has unknown group {point.group!r}"
            )

    swept = set()
    for point in matrix:
        swept.update(point.overrides)
    for name in LEGALIZER_SPEC.variables:
        covered = (
            name in swept or name in BASE_OVERRIDDEN or name in MATRIX_EXEMPT
        )
        if not covered:
            problems.append(
                f"LegalizerConfig knob {name!r} is not swept by any oracle "
                "point, not pinned by the oracle base, and not exempted in "
                "repro.scenario.matrix.MATRIX_EXEMPT — add oracle coverage "
                "or an exemption with a reason"
            )
    for name in MATRIX_EXEMPT:
        if name not in LEGALIZER_SPEC.variables:
            problems.append(
                f"MATRIX_EXEMPT names unknown knob {name!r}"
            )

    from repro.fuzz.oracle import OracleOptions, oracle_configs

    live = [(n, g) for n, _, g in oracle_configs(OracleOptions())]
    generated = [(p.name, p.group if p.name != "baseline" else "baseline")
                 for p in matrix]
    if live != generated:
        problems.append(
            "fuzz.oracle.oracle_configs disagrees with the generated "
            f"matrix: live={live!r} generated={generated!r}"
        )
    return problems


__all__ = [
    "BASE_OVERRIDDEN",
    "MATRIX_EXEMPT",
    "OraclePoint",
    "matrix_self_check",
    "oracle_matrix",
]
