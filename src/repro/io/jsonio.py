"""Native JSON serialization of a :class:`~repro.netlist.Design`.

The JSON form is lossless (masters, GP and current positions, rails, nets
with pin offsets, core geometry) and convenient for test fixtures and for
shipping benchmark instances alongside results.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.netlist.cell import CellMaster, RailType
from repro.netlist.design import Design
from repro.netlist.net import Pin
from repro.rows.core_area import CoreArea
from repro.rows.power import RailScheme

FORMAT_VERSION = 1


def design_to_dict(design: Design) -> Dict[str, Any]:
    """Serialize a design to plain dictionaries."""
    core = design.core
    return {
        "format_version": FORMAT_VERSION,
        "name": design.name,
        "core": {
            "xl": core.xl,
            "yl": core.yl,
            "num_rows": core.num_rows,
            "row_height": core.row_height,
            "num_sites": core.num_sites,
            "site_width": core.site_width,
            "row0_bottom_rail": core.rails.bottom_rail_of_row_0.value,
        },
        "masters": [
            {
                "name": m.name,
                "width": m.width,
                "height_rows": m.height_rows,
                "bottom_rail": m.bottom_rail.value if m.bottom_rail else None,
            }
            for m in design.masters.values()
        ],
        "cells": [
            {
                "name": c.name,
                "master": c.master.name,
                "gp_x": c.gp_x,
                "gp_y": c.gp_y,
                "x": c.x,
                "y": c.y,
                "fixed": c.fixed,
                "flipped": c.flipped,
            }
            for c in design.cells
        ],
        "nets": [
            {
                "name": net.name,
                "pins": [
                    {
                        "cell": pin.cell.name if pin.cell else None,
                        "dx": pin.offset_x,
                        "dy": pin.offset_y,
                    }
                    for pin in net.pins
                ],
            }
            for net in design.nets
        ],
        # Optional: omitted entirely when empty so fence-free payloads are
        # byte-identical to pre-fence writers (format_version stays 1).
        **(
            {
                "fences": [
                    {
                        "name": f.name,
                        "rects": [list(rect) for rect in f.rects],
                        "members": sorted(f.members),
                    }
                    for f in design.fences
                ]
            }
            if design.fences
            else {}
        ),
    }


def design_from_dict(data: Dict[str, Any]) -> Design:
    """Deserialize a design from :func:`design_to_dict` output."""
    version = data.get("format_version", 0)
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported design JSON version {version}")
    cd = data["core"]
    core = CoreArea(
        xl=cd["xl"],
        yl=cd["yl"],
        num_rows=cd["num_rows"],
        row_height=cd["row_height"],
        num_sites=cd["num_sites"],
        site_width=cd["site_width"],
        rails=RailScheme(bottom_rail_of_row_0=RailType(cd["row0_bottom_rail"])),
    )
    design = Design(name=data["name"], core=core)
    masters = {}
    for md in data["masters"]:
        rail = RailType(md["bottom_rail"]) if md["bottom_rail"] else None
        masters[md["name"]] = CellMaster(
            name=md["name"],
            width=md["width"],
            height_rows=md["height_rows"],
            bottom_rail=rail,
        )
    for cdata in data["cells"]:
        cell = design.add_cell(
            cdata["name"],
            masters[cdata["master"]],
            cdata["gp_x"],
            cdata["gp_y"],
            fixed=cdata["fixed"],
        )
        cell.x = cdata["x"]
        cell.y = cdata["y"]
        cell.flipped = cdata["flipped"]
    by_name = {c.name: c for c in design.cells}
    for ndata in data["nets"]:
        pins = [
            Pin(
                cell=by_name[p["cell"]] if p["cell"] else None,
                offset_x=p["dx"],
                offset_y=p["dy"],
            )
            for p in ndata["pins"]
        ]
        design.add_net(ndata["name"], pins)
    for fdata in data.get("fences", []):
        design.add_fence(
            fdata["name"],
            [tuple(rect) for rect in fdata["rects"]],
            fdata["members"],
        )
    design.validate_fences()
    return design


def save_design(design: Design, path: str) -> None:
    """Write a design to a JSON file."""
    with open(path, "w") as fh:
        json.dump(design_to_dict(design), fh)


def load_design(path: str) -> Design:
    """Read a design from a JSON file."""
    with open(path) as fh:
        return design_from_dict(json.load(fh))
