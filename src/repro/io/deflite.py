"""Minimal LEF/DEF export (write-only interop).

Downstream physical-design tools (OpenROAD, commercial P&R) speak LEF/DEF
rather than Bookshelf.  ``write_lef`` emits the technology/macro side of a
design (one SITE, one MACRO per :class:`CellMaster`) and ``write_def`` the
placed netlist side (DIEAREA, ROW statements with alternating orientation,
COMPONENTS with PLACED/FIXED attributes, and the netlist as DEF NETS).

This is deliberately a *lite* dialect: enough for a legalized placement to
be loaded and inspected elsewhere, not a full LEF/DEF implementation
(no routing layers, no pins geometry beyond cell origins, no groups).
"""

from __future__ import annotations

from typing import Optional, TextIO

from repro.netlist.design import Design

#: DEF distance units per database unit.
DEFAULT_DBU = 1000


def write_lef(design: Design, path: str, site_name: str = "coresite") -> str:
    """Write a technology+macros LEF file for the design's library."""
    core = design.core
    with open(path, "w") as fh:
        fh.write("VERSION 5.8 ;\nBUSBITCHARS \"[]\" ;\nDIVIDERCHAR \"/\" ;\n\n")
        fh.write(f"SITE {site_name}\n")
        fh.write("  CLASS CORE ;\n")
        fh.write(f"  SIZE {core.site_width:g} BY {core.row_height:g} ;\n")
        fh.write("  SYMMETRY Y ;\n")
        fh.write(f"END {site_name}\n\n")
        for master in design.masters.values():
            height = master.height_rows * core.row_height
            fh.write(f"MACRO {master.name}\n")
            fh.write("  CLASS CORE ;\n")
            fh.write("  ORIGIN 0 0 ;\n")
            fh.write(f"  SIZE {master.width:g} BY {height:g} ;\n")
            symmetry = "X Y" if not master.is_even_height else "Y"
            fh.write(f"  SYMMETRY {symmetry} ;\n")
            fh.write(f"  SITE {site_name} ;\n")
            fh.write(f"END {master.name}\n\n")
        fh.write("END LIBRARY\n")
    return path


def write_def(
    design: Design,
    path: str,
    dbu: int = DEFAULT_DBU,
    site_name: str = "coresite",
    include_nets: bool = True,
) -> str:
    """Write a placed DEF file; positions use the cells' current x/y."""
    core = design.core

    def dist(value: float) -> int:
        return int(round(value * dbu))

    with open(path, "w") as fh:
        fh.write("VERSION 5.8 ;\nDIVIDERCHAR \"/\" ;\nBUSBITCHARS \"[]\" ;\n")
        fh.write(f"DESIGN {design.name} ;\n")
        fh.write(f"UNITS DISTANCE MICRONS {dbu} ;\n\n")
        fh.write(
            f"DIEAREA ( {dist(core.xl)} {dist(core.yl)} ) "
            f"( {dist(core.xh)} {dist(core.yh)} ) ;\n\n"
        )
        for r in range(core.num_rows):
            orient = "N" if core.rails.bottom_rail(r) is core.rails.bottom_rail_of_row_0 else "FS"
            fh.write(
                f"ROW row_{r} {site_name} {dist(core.xl)} {dist(core.row_y(r))} "
                f"{orient} DO {core.num_sites} BY 1 STEP {dist(core.site_width)} 0 ;\n"
            )
        fh.write(f"\nCOMPONENTS {design.num_cells} ;\n")
        for cell in design.cells:
            status = "FIXED" if cell.fixed else "PLACED"
            orient = "FS" if cell.flipped else "N"
            fh.write(
                f"  - {cell.name} {cell.master.name} + {status} "
                f"( {dist(cell.x)} {dist(cell.y)} ) {orient} ;\n"
            )
        fh.write("END COMPONENTS\n")
        if include_nets and design.nets:
            fh.write(f"\nNETS {len(design.nets)} ;\n")
            for net in design.nets:
                terms = " ".join(
                    f"( {pin.cell.name} p{idx} )" if pin.cell is not None
                    else f"( PIN io{idx} )"
                    for idx, pin in enumerate(net.pins)
                )
                fh.write(f"  - {net.name} {terms} ;\n")
            fh.write("END NETS\n")
        fh.write("\nEND DESIGN\n")
    return path


def export_lefdef(
    design: Design,
    lef_path: str,
    def_path: str,
    dbu: int = DEFAULT_DBU,
) -> "tuple[str, str]":
    """Write the LEF/DEF pair; returns both paths."""
    return write_lef(design, lef_path), write_def(design, def_path, dbu=dbu)
