"""Design I/O: Bookshelf (ISPD-style) and native JSON."""

from repro.io.bookshelf.reader import read_design
from repro.io.deflite import export_lefdef, write_def, write_lef
from repro.io.bookshelf.writer import write_design
from repro.io.jsonio import (
    design_from_dict,
    design_to_dict,
    load_design,
    save_design,
)

__all__ = [
    "read_design",
    "write_design",
    "write_lef",
    "write_def",
    "export_lefdef",
    "save_design",
    "load_design",
    "design_to_dict",
    "design_from_dict",
]
