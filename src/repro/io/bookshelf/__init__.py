"""Bookshelf placement-format reader/writer (with the .rails extension)."""

from repro.io.bookshelf.reader import read_design
from repro.io.bookshelf.writer import write_design

__all__ = ["read_design", "write_design"]
