"""Bookshelf reader: load a :class:`~repro.netlist.Design` from disk.

``read_design(aux_path)`` parses the suite referenced by the ``.aux`` file.
Rows must be uniform (same height/site width, contiguous stack) — that is
what the paper's problem statement and our :class:`~repro.rows.CoreArea`
assume; non-uniform ``.scl`` files raise a clear error rather than being
silently mangled.

Positions in ``.pl`` populate *both* ``gp_(x|y)`` and the working ``(x, y)``
— reading a file re-establishes "a global placement to be legalized".
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from repro.io.bookshelf.format import AUX_KEY, drop_header, strip_comments
from repro.netlist.cell import CellMaster, RailType
from repro.netlist.design import Design
from repro.netlist.net import Pin
from repro.rows.core_area import CoreArea
from repro.rows.power import RailScheme


def read_design(aux_path: str, name: Optional[str] = None) -> Design:
    """Read a Bookshelf suite starting from its ``.aux`` file."""
    directory = os.path.dirname(os.path.abspath(aux_path))
    files = _parse_aux(aux_path)

    def locate(ext: str) -> Optional[str]:
        for fname in files:
            if fname.endswith("." + ext):
                return os.path.join(directory, fname)
        return None

    nodes_path = locate("nodes")
    pl_path = locate("pl")
    scl_path = locate("scl")
    nets_path = locate("nets")
    rails_path = locate("rails")
    fences_path = locate("fences")
    if not (nodes_path and pl_path and scl_path):
        raise ValueError(f"aux file {aux_path} must reference .nodes, .pl and .scl")

    core, row0_rail_hint = _parse_scl(scl_path)
    rails = _parse_rails(rails_path) if rails_path and os.path.exists(rails_path) else {}
    if rails.get("__row0__") is not None:
        core = CoreArea(
            xl=core.xl,
            yl=core.yl,
            num_rows=core.num_rows,
            row_height=core.row_height,
            num_sites=core.num_sites,
            site_width=core.site_width,
            rails=RailScheme(bottom_rail_of_row_0=rails["__row0__"]),
        )
    _ = row0_rail_hint

    design_name = name or os.path.splitext(os.path.basename(aux_path))[0]
    design = Design(name=design_name, core=core)
    _parse_nodes(nodes_path, design, rails)
    _parse_pl(pl_path, design)
    if nets_path and os.path.exists(nets_path):
        _parse_nets(nets_path, design)
    if fences_path and os.path.exists(fences_path):
        _parse_fences(fences_path, design)
        design.validate_fences()
    return design


# ----------------------------------------------------------------------
# Individual file parsers
# ----------------------------------------------------------------------
def _read_lines(path: str) -> List[str]:
    with open(path) as fh:
        return list(strip_comments(iter(fh)))


def _parse_aux(path: str) -> List[str]:
    lines = _read_lines(path)
    if not lines:
        raise ValueError(f"empty aux file {path}")
    tokens = lines[0].replace(":", " ").split()
    if tokens and tokens[0] == AUX_KEY:
        tokens = tokens[1:]
    return tokens


def _parse_scl(path: str) -> Tuple[CoreArea, Optional[RailType]]:
    lines = drop_header(_read_lines(path), "scl")
    rows: List[dict] = []
    current: Optional[dict] = None
    for line in lines:
        tokens = line.replace(":", " ").split()
        if not tokens:
            continue
        key = tokens[0].lower()
        if key == "numrows":
            continue
        if key == "corerow":
            current = {}
        elif key == "end":
            if current is not None:
                rows.append(current)
            current = None
        elif current is not None:
            if key == "coordinate":
                current["y"] = float(tokens[1])
            elif key == "height":
                current["height"] = float(tokens[1])
            elif key == "sitewidth":
                current["site_width"] = float(tokens[1])
            elif key == "subroworigin":
                current["xl"] = float(tokens[1])
                if "numsites" in (t.lower() for t in tokens):
                    idx = [t.lower() for t in tokens].index("numsites")
                    current["num_sites"] = int(tokens[idx + 1])
    if not rows:
        raise ValueError(f"no CoreRow entries in {path}")
    rows.sort(key=lambda r: r["y"])
    height = rows[0]["height"]
    site_width = rows[0].get("site_width", 1.0)
    xl = rows[0].get("xl", 0.0)
    num_sites = rows[0].get("num_sites", 1)
    for i, row in enumerate(rows):
        if abs(row["height"] - height) > 1e-9:
            raise ValueError("non-uniform row heights are not supported")
        if abs(row.get("site_width", site_width) - site_width) > 1e-9:
            raise ValueError("non-uniform site widths are not supported")
        if abs(row.get("xl", xl) - xl) > 1e-9 or row.get("num_sites", num_sites) != num_sites:
            raise ValueError("rows with differing extents are not supported")
        expected_y = rows[0]["y"] + i * height
        if abs(row["y"] - expected_y) > 1e-6:
            raise ValueError("rows must form a contiguous stack")
    core = CoreArea(
        xl=xl,
        yl=rows[0]["y"],
        num_rows=len(rows),
        row_height=height,
        num_sites=num_sites,
        site_width=site_width,
    )
    return core, None


def _parse_rails(path: str) -> Dict[str, RailType]:
    """Parse the ``.rails`` extension file; key ``__row0__`` holds parity."""
    rails: Dict[str, RailType] = {}
    lines = drop_header(_read_lines(path), "rails")
    for line in lines:
        tokens = line.replace(":", " ").split()
        if not tokens:
            continue
        if tokens[0].lower() == "row0bottomrail":
            rails["__row0__"] = RailType(tokens[1])
        elif len(tokens) >= 2:
            rails[tokens[0]] = RailType(tokens[1])
    return rails


def _parse_fences(path: str, design: Design) -> None:
    """Parse the ``.fences`` extension file written by the Bookshelf writer."""
    lines = drop_header(_read_lines(path), "fences")
    name: Optional[str] = None
    rects: List[Tuple[float, float, float, float]] = []
    members: List[str] = []
    for line in lines:
        tokens = line.replace(":", " ").split()
        if not tokens:
            continue
        key = tokens[0].lower()
        if key == "fence":
            name = tokens[1]
            rects = []
            members = []
        elif key == "end":
            if name is None:
                raise ValueError(f"stray End in {path}")
            design.add_fence(name, rects, members)
            name = None
        elif key == "rect":
            rects.append(
                (float(tokens[1]), float(tokens[2]),
                 float(tokens[3]), float(tokens[4]))
            )
        elif key == "member":
            members.extend(tokens[1:])
        elif name is None:
            raise ValueError(f"unexpected line in {path}: {line!r}")


def _parse_nodes(path: str, design: Design, rails: Dict[str, RailType]) -> None:
    lines = drop_header(_read_lines(path), "nodes")
    row_h = design.core.row_height
    for line in lines:
        tokens = line.split()
        if tokens[0].lower().startswith(("numnodes", "numterminals")):
            continue
        name = tokens[0]
        width = float(tokens[1])
        height = float(tokens[2])
        fixed = len(tokens) > 3 and tokens[3].lower().startswith("terminal")
        height_rows = max(1, round(height / row_h))
        if abs(height_rows * row_h - height) > 1e-6 * row_h:
            raise ValueError(
                f"node {name}: height {height} is not a multiple of the row "
                f"height {row_h}"
            )
        bottom_rail = rails.get(name)
        if height_rows % 2 == 0 and bottom_rail is None:
            # Standard Bookshelf has no rail info; default even-height cells
            # to VSS-bottom so they remain placeable (documented extension).
            bottom_rail = RailType.VSS
        master_name = _master_name(width, height_rows, bottom_rail)
        master = design.masters.get(master_name) or CellMaster(
            name=master_name,
            width=width,
            height_rows=height_rows,
            bottom_rail=bottom_rail,
        )
        design.add_cell(name, master, 0.0, 0.0, fixed=fixed)


def _master_name(width: float, height_rows: int, rail: Optional[RailType]) -> str:
    suffix = f"_{rail.value}" if rail is not None else ""
    return f"w{width:g}_h{height_rows}{suffix}"


def _parse_pl(path: str, design: Design) -> None:
    lines = drop_header(_read_lines(path), "pl")
    by_name = {cell.name: cell for cell in design.cells}
    for line in lines:
        tokens = line.replace(":", " ").split()
        if not tokens or tokens[0].lower().startswith("numnodes"):
            continue
        name = tokens[0]
        cell = by_name.get(name)
        if cell is None:
            raise ValueError(f".pl references unknown node {name!r}")
        x, y = float(tokens[1]), float(tokens[2])
        cell.gp_x = cell.x = x
        cell.gp_y = cell.y = y
        if len(tokens) > 3 and tokens[3] in ("FS", "S"):
            cell.flipped = True
        if "/FIXED" in line or (tokens and tokens[-1].upper() == "FIXED"):
            cell.fixed = True


def _parse_nets(path: str, design: Design) -> None:
    lines = drop_header(_read_lines(path), "nets")
    by_name = {cell.name: cell for cell in design.cells}
    i = 0
    net = None
    remaining = 0
    for line in lines:
        tokens = line.replace(":", " ").split()
        if not tokens:
            continue
        key = tokens[0].lower()
        if key in ("numnets", "numpins"):
            continue
        if key == "netdegree":
            degree = int(tokens[1])
            net_name = tokens[2] if len(tokens) > 2 else f"net{i}"
            net = design.add_net(net_name)
            remaining = degree
            i += 1
            continue
        if net is None or remaining <= 0:
            raise ValueError(f"unexpected pin line in {path}: {line!r}")
        cell_name = tokens[0]
        # Token layout: <cell> <dir> : <dx> <dy>  (':' already removed).
        dx = float(tokens[2]) if len(tokens) > 2 else 0.0
        dy = float(tokens[3]) if len(tokens) > 3 else 0.0
        cell = by_name.get(cell_name)
        net.add_pin(Pin(cell=cell, offset_x=dx, offset_y=dy))
        remaining -= 1
