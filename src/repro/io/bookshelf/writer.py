"""Bookshelf writer: serialize a :class:`~repro.netlist.Design` to disk.

``write_design(design, directory, basename)`` emits the full suite
(``.aux .nodes .pl .scl .nets .rails``).  Positions written to ``.pl`` are
the cells' *current* coordinates; to persist the global placement use
``use_gp=True`` (the paper's benchmarks ship GP coordinates, legalizers
write legalized ones next to them).
"""

from __future__ import annotations

import os
from typing import TextIO

from repro.io.bookshelf.format import AUX_KEY, write_header
from repro.netlist.design import Design


def _num(value: float) -> str:
    """Shortest decimal string that round-trips the float64 exactly.

    Positions, widths, and row geometry must survive write -> read
    *bitwise* — the fuzz corpus replays Bookshelf repros and asserts
    bit-identical legalization, and a ``%.6f``-style truncation perturbs
    every GP coordinate by ~1e-7.  ``repr`` of a Python float is the
    shortest string that parses back to the same bits.
    """
    return repr(float(value))


def write_design(
    design: Design, directory: str, basename: str = None, use_gp: bool = False
) -> str:
    """Write all Bookshelf files; returns the ``.aux`` path."""
    basename = basename or design.name
    os.makedirs(directory, exist_ok=True)

    def path(ext: str) -> str:
        return os.path.join(directory, f"{basename}.{ext}")

    _write_nodes(design, path("nodes"))
    _write_pl(design, path("pl"), use_gp=use_gp)
    _write_scl(design, path("scl"))
    _write_nets(design, path("nets"))
    _write_rails(design, path("rails"))
    extra = ""
    if design.fences:
        _write_fences(design, path("fences"))
        extra = f" {basename}.fences"

    aux_path = path("aux")
    with open(aux_path, "w") as fh:
        fh.write(
            f"{AUX_KEY} : {basename}.nodes {basename}.nets "
            f"{basename}.pl {basename}.scl {basename}.rails{extra}\n"
        )
    return aux_path


def _write_nodes(design: Design, path: str) -> None:
    terminals = [c for c in design.cells if c.fixed]
    with open(path, "w") as fh:
        write_header(fh, "nodes")
        fh.write(f"NumNodes : {design.num_cells}\n")
        fh.write(f"NumTerminals : {len(terminals)}\n")
        row_h = design.core.row_height
        for cell in design.cells:
            height = cell.height_rows * row_h
            terminal = " terminal" if cell.fixed else ""
            fh.write(
                f"\t{cell.name}\t{_num(cell.width)}\t{_num(height)}{terminal}\n"
            )


def _write_pl(design: Design, path: str, use_gp: bool) -> None:
    with open(path, "w") as fh:
        write_header(fh, "pl")
        for cell in design.cells:
            x = cell.gp_x if use_gp else cell.x
            y = cell.gp_y if use_gp else cell.y
            orient = "FS" if cell.flipped else "N"
            fixed = " /FIXED" if cell.fixed else ""
            fh.write(f"{cell.name}\t{_num(x)}\t{_num(y)}\t: {orient}{fixed}\n")


def _write_scl(design: Design, path: str) -> None:
    core = design.core
    with open(path, "w") as fh:
        write_header(fh, "scl")
        fh.write(f"NumRows : {core.num_rows}\n\n")
        for r in range(core.num_rows):
            fh.write("CoreRow Horizontal\n")
            fh.write(f"  Coordinate    : {_num(core.row_y(r))}\n")
            fh.write(f"  Height        : {_num(core.row_height)}\n")
            fh.write(f"  Sitewidth     : {_num(core.site_width)}\n")
            fh.write(f"  Sitespacing   : {_num(core.site_width)}\n")
            fh.write("  Siteorient    : 1\n")
            fh.write("  Sitesymmetry  : 1\n")
            fh.write(
                f"  SubrowOrigin  : {_num(core.xl)}  NumSites : {core.num_sites}\n"
            )
            fh.write("End\n")


def _write_nets(design: Design, path: str) -> None:
    num_pins = sum(net.degree() for net in design.nets)
    with open(path, "w") as fh:
        write_header(fh, "nets")
        fh.write(f"NumNets : {len(design.nets)}\n")
        fh.write(f"NumPins : {num_pins}\n\n")
        for net in design.nets:
            fh.write(f"NetDegree : {net.degree()} {net.name}\n")
            for pin in net.pins:
                owner = pin.cell.name if pin.cell is not None else "FIXED"
                fh.write(
                    f"\t{owner} B : {_num(pin.offset_x)} {_num(pin.offset_y)}\n"
                )


def _write_rails(design: Design, path: str) -> None:
    """Extension file: bottom-rail types of rail-constrained masters."""
    with open(path, "w") as fh:
        write_header(fh, "rails")
        fh.write(f"Row0BottomRail : {design.core.rails.bottom_rail_of_row_0.value}\n")
        for cell in design.cells:
            if cell.master.bottom_rail is not None:
                fh.write(f"{cell.name} {cell.master.bottom_rail.value}\n")


def _write_fences(design: Design, path: str) -> None:
    """Extension file: fence regions (rect coords round-trip bitwise).

    Layout per fence::

        Fence <name>
          Rect : <xl> <yl> <xh> <yh>     (one line per rect)
          Member : <cell> <cell> ...     (repeatable)
        End
    """
    with open(path, "w") as fh:
        write_header(fh, "fences")
        for fence in design.fences:
            fh.write(f"Fence {fence.name}\n")
            for xl, yl, xh, yh in fence.rects:
                fh.write(
                    f"  Rect : {_num(xl)} {_num(yl)} {_num(xh)} {_num(yh)}\n"
                )
            members = sorted(fence.members)
            for start in range(0, len(members), 8):
                fh.write("  Member : " + " ".join(members[start:start + 8]) + "\n")
            fh.write("End\n")
