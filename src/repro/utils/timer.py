"""Lightweight wall-clock timing for flow stages.

The paper reports per-benchmark runtimes; :class:`StageTimer` records named
stage durations so the legalizer can attach a runtime breakdown to its
result without any external profiler.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator


class StageTimer:
    """Accumulates wall-clock seconds per named stage."""

    def __init__(self) -> None:
        self._totals: Dict[str, float] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._totals[name] = self._totals.get(name, 0.0) + elapsed

    def seconds(self, name: str) -> float:
        return self._totals.get(name, 0.0)

    def total(self) -> float:
        return sum(self._totals.values())

    def as_dict(self) -> Dict[str, float]:
        return dict(self._totals)

    def __str__(self) -> str:
        parts = ", ".join(f"{k}={v:.3f}s" for k, v in self._totals.items())
        return f"StageTimer({parts}, total={self.total():.3f}s)"
