"""Lightweight wall-clock timing for flow stages (telemetry-backed shim).

:class:`StageTimer` predates the :mod:`repro.telemetry` subsystem; it is
now a thin wrapper over a private :class:`~repro.telemetry.tracer.Tracer`
that keeps the original accumulate-seconds-per-stage API so existing
callers and benchmark scripts work unchanged.

Bonus over the original: when an ambient telemetry session is active
(:func:`repro.telemetry.session`), every ``stage(...)`` also opens a span
on the ambient tracer, so StageTimer-instrumented baselines show up in
exported traces for free.  New code should use the tracer API directly.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator

from repro.telemetry import Tracer, current_session


class StageTimer:
    """Accumulates wall-clock seconds per named stage."""

    def __init__(self) -> None:
        self._tracer = Tracer()

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        ambient = current_session()
        if ambient.enabled:
            with ambient.tracer.span(name), self._tracer.span(name):
                yield
        else:
            with self._tracer.span(name):
                yield

    def seconds(self, name: str) -> float:
        return self._tracer.stage_seconds().get(name, 0.0)

    def total(self) -> float:
        return sum(self._tracer.stage_seconds().values())

    def as_dict(self) -> Dict[str, float]:
        return self._tracer.stage_seconds()

    def __str__(self) -> str:
        totals = self._tracer.stage_seconds()
        parts = ", ".join(f"{k}={v:.3f}s" for k, v in totals.items())
        return f"StageTimer({parts}, total={self.total():.3f}s)"
