"""Small shared utilities."""

from repro.utils.timer import StageTimer

__all__ = ["StageTimer"]
