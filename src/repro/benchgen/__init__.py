"""Synthetic ISPD-2015-style benchmark generation (paper Table 1 profiles)."""

from repro.benchgen.generator import GeneratorConfig, generate_benchmark
from repro.benchgen.netgen import NetgenConfig, generate_nets
from repro.benchgen.profiles import (
    PAPER_PROFILES,
    PROFILES_BY_NAME,
    BenchmarkProfile,
    get_profile,
)


def make_benchmark(
    name: str,
    scale: float = 0.02,
    seed: int = 0,
    mixed: bool = True,
    with_nets: bool = True,
    fences: int = 0,
    macro_fraction: float = 0.0,
):
    """One-call benchmark construction: cells + GP + synthetic netlist."""
    design = generate_benchmark(
        name,
        scale=scale,
        seed=seed,
        mixed=mixed,
        fences=fences,
        macro_fraction=macro_fraction,
    )
    if with_nets:
        generate_nets(design, seed=seed + 1)
    return design


__all__ = [
    "generate_benchmark",
    "generate_nets",
    "make_benchmark",
    "GeneratorConfig",
    "NetgenConfig",
    "BenchmarkProfile",
    "PAPER_PROFILES",
    "PROFILES_BY_NAME",
    "get_profile",
]
