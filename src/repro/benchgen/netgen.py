"""Synthetic netlist generation.

ΔHPWL in Table 2 rewards legalizers that move cells *coherently*: a net's
HPWL only grows when its pins move apart.  Any locality-correlated netlist
reproduces that effect, so we generate nets the way placed netlists look
after global placement:

* **local nets** (the bulk): a seed cell plus its k nearest neighbours at
  GP positions (k in 2..5, weighted toward 2-3-pin nets);
* **regional nets** (a tail): 4..9 pins sampled from a Gaussian window a
  few rows wide, modelling buses and control fans.

Pins are placed at jittered offsets inside each cell, mimicking real pin
geometry.  Net count defaults to ~1.1 x cell count, the ballpark of the
ISPD-2015 designs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np
from scipy.spatial import cKDTree

from repro.netlist.design import Design
from repro.netlist.net import Pin


@dataclass(frozen=True)
class NetgenConfig:
    nets_per_cell: float = 1.1
    local_fraction: float = 0.85
    min_degree: int = 2
    max_local_degree: int = 5
    max_regional_degree: int = 9
    regional_window_rows: float = 6.0


def generate_nets(
    design: Design,
    config: Optional[NetgenConfig] = None,
    seed: int = 1,
) -> int:
    """Attach synthetic nets to a design; returns the number of nets added.

    Requires at least ``min_degree`` movable cells; smaller designs get no
    nets (HPWL metrics then report 0).
    """
    cfg = config or NetgenConfig()
    cells = design.movable_cells
    if len(cells) < cfg.min_degree:
        return 0
    rng = np.random.default_rng(seed)
    centers = np.array(
        [(c.gp_x + 0.5 * c.width, c.gp_y + 0.5 * c.height(design.core.row_height))
         for c in cells]
    )
    tree = cKDTree(centers)
    num_nets = max(1, int(round(cfg.nets_per_cell * len(cells))))
    num_local = int(round(cfg.local_fraction * num_nets))

    added = 0
    for i in range(num_local):
        seed_idx = int(rng.integers(len(cells)))
        degree = _sample_degree(rng, cfg.min_degree, cfg.max_local_degree)
        k = min(degree, len(cells))
        _, neighbours = tree.query(centers[seed_idx], k=k)
        members = np.atleast_1d(neighbours)[:k]
        added += _emit_net(design, cells, members, f"ln{i}", rng)

    window = cfg.regional_window_rows * design.core.row_height
    for i in range(num_nets - num_local):
        seed_idx = int(rng.integers(len(cells)))
        degree = _sample_degree(rng, 4, cfg.max_regional_degree)
        center = centers[seed_idx]
        # Candidates within the Gaussian window (fall back to knn if sparse).
        idx = tree.query_ball_point(center, r=2.0 * window)
        if len(idx) < degree:
            _, idx = tree.query(center, k=min(degree, len(cells)))
            idx = np.atleast_1d(idx)
        members = rng.choice(np.asarray(idx), size=min(degree, len(idx)), replace=False)
        added += _emit_net(design, cells, members, f"rn{i}", rng)
    return added


def _sample_degree(rng: np.random.Generator, lo: int, hi: int) -> int:
    """Degrees weighted toward the small end (2-pin nets dominate)."""
    weights = np.array([1.0 / (k - lo + 1) ** 1.5 for k in range(lo, hi + 1)])
    weights /= weights.sum()
    return lo + int(rng.choice(hi - lo + 1, p=weights))


def _emit_net(
    design: Design,
    cells: List,
    members: np.ndarray,
    name: str,
    rng: np.random.Generator,
) -> int:
    unique = sorted(set(int(m) for m in members))
    if len(unique) < 2:
        return 0
    pins = []
    row_h = design.core.row_height
    for idx in unique:
        cell = cells[idx]
        dx = float(rng.uniform(0.1, 0.9)) * cell.width
        dy = float(rng.uniform(0.1, 0.9)) * cell.height(row_h)
        pins.append(Pin(cell=cell, offset_x=dx, offset_y=dy))
    design.add_net(name, pins)
    return 1
