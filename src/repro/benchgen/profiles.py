"""Profiles of the paper's 20 benchmarks (Table 1 statistics).

The paper evaluates on benchmarks derived from the ISPD-2015 contest by
Chow et al.: fence regions dropped, and 10% of cells doubled in height and
halved in width.  Those files are not redistributable, so we regenerate
*synthetic* instances that match each benchmark's published statistics —
single/double cell counts and design density — at a configurable ``scale``
(fraction of the original cell count), as recorded in DESIGN.md's
substitution table.

``GP_HPWL_M`` (Table 2's "GP HPWL" column, in meters) is kept for
reporting side-by-side with our synthetic instances' HPWL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class BenchmarkProfile:
    """Published statistics of one paper benchmark."""

    name: str
    num_single: int     # "#S. Cell" of Table 1
    num_double: int     # "#D. Cell" of Table 1
    density: float      # "Density" of Table 1
    gp_hpwl_m: float    # "GP HPWL (m)" of Table 2

    @property
    def num_cells(self) -> int:
        return self.num_single + self.num_double

    @property
    def double_fraction(self) -> float:
        return self.num_double / self.num_cells

    def scaled(self, scale: float) -> "ScaledProfile":
        """Target counts after applying a generation scale factor."""
        if not 0.0 < scale <= 1.0:
            raise ValueError("scale must be in (0, 1]")
        num_single = max(1, round(self.num_single * scale))
        num_double = max(1, round(self.num_double * scale)) if self.num_double else 0
        return ScaledProfile(
            profile=self, scale=scale, num_single=num_single, num_double=num_double
        )


@dataclass(frozen=True)
class ScaledProfile:
    """A profile with concrete generation counts."""

    profile: BenchmarkProfile
    scale: float
    num_single: int
    num_double: int

    @property
    def name(self) -> str:
        return self.profile.name

    @property
    def density(self) -> float:
        return self.profile.density


#: Table 1 of the paper, column for column (plus Table 2's GP HPWL).
PAPER_PROFILES: List[BenchmarkProfile] = [
    BenchmarkProfile("des_perf_1", 103842, 8802, 0.91, 1.43),
    BenchmarkProfile("des_perf_a", 99775, 8513, 0.43, 2.57),
    BenchmarkProfile("des_perf_b", 103842, 8802, 0.50, 2.13),
    BenchmarkProfile("edit_dist_a", 121913, 5500, 0.46, 5.25),
    BenchmarkProfile("fft_1", 30297, 1984, 0.84, 0.46),
    BenchmarkProfile("fft_2", 30297, 1984, 0.50, 0.46),
    BenchmarkProfile("fft_a", 28718, 1907, 0.25, 0.75),
    BenchmarkProfile("fft_b", 28718, 1907, 0.28, 0.95),
    BenchmarkProfile("matrix_mult_1", 152427, 2898, 0.80, 2.39),
    BenchmarkProfile("matrix_mult_2", 152427, 2898, 0.79, 2.59),
    BenchmarkProfile("matrix_mult_a", 146837, 2813, 0.42, 3.77),
    BenchmarkProfile("matrix_mult_b", 143695, 2740, 0.31, 3.43),
    BenchmarkProfile("matrix_mult_c", 143695, 2740, 0.31, 3.29),
    BenchmarkProfile("pci_bridge32_a", 26268, 3249, 0.38, 0.46),
    BenchmarkProfile("pci_bridge32_b", 25734, 3180, 0.14, 0.98),
    BenchmarkProfile("superblue11_a", 861314, 64302, 0.43, 42.94),
    BenchmarkProfile("superblue12", 1172586, 114362, 0.45, 39.23),
    BenchmarkProfile("superblue14", 564769, 47474, 0.56, 27.98),
    BenchmarkProfile("superblue16_a", 625419, 55031, 0.48, 31.35),
    BenchmarkProfile("superblue19", 478109, 27988, 0.52, 20.76),
]

PROFILES_BY_NAME: Dict[str, BenchmarkProfile] = {p.name: p for p in PAPER_PROFILES}


def get_profile(name: str) -> BenchmarkProfile:
    """Look up a paper benchmark profile by name."""
    try:
        return PROFILES_BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(PROFILES_BY_NAME))
        raise KeyError(f"unknown benchmark {name!r}; known: {known}") from None
