"""Synthetic mixed-cell-height benchmark generator.

For each paper benchmark (see :mod:`repro.benchgen.profiles`) we build an
instance that matches its published statistics:

1. **Widths.**  Single-height widths are drawn from a geometric-flavoured
   distribution over 2..16 sites (small cells dominate, as in standard-cell
   libraries).  Double-height cells follow the paper's benchmark
   modification — a doubled cell keeps its area, so its width is *half* a
   single-height width (rounded up to a full site).

2. **Legal packing.**  A feasible legal placement is constructed by a
   frontier (brick-wall) packer: per-row frontiers advance left to right,
   each cell goes to the most-lagging rail-correct row (pair), separated by
   exponential random gaps whose mean realizes the target density.  The core
   width is then fixed to the maximum frontier, so the instance is feasible
   *by construction* and its density lands on the profile's value.

3. **Global placement.**  GP coordinates are the legal ones plus Gaussian
   noise (σ_x in sites, σ_y in rows), clamped into the core.  This produces
   the structure legalizers actually see: locally overlapping, globally
   sensible, order-mostly-preserved positions.

The returned design's cells carry the *GP* coordinates in both ``gp_*`` and
working positions; the hidden legal packing is discarded (a legalizer must
rediscover one).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.benchgen.profiles import BenchmarkProfile, ScaledProfile, get_profile
from repro.netlist.cell import CellMaster, RailType
from repro.netlist.design import Design
from repro.rows.core_area import CoreArea
from repro.rows.power import RailScheme


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the synthetic generator (defaults mimic ISPD-2015 texture)."""

    row_height: float = 9.0
    site_width: float = 1.0
    min_width_sites: int = 2
    max_width_sites: int = 16
    width_decay: float = 0.35       # geometric decay of the width histogram
    field_modes: int = 4             # low-frequency modes of the GP distortion
    field_amp_sites: float = 12.0    # smooth-field amplitude, x (site widths)
    field_amp_rows: float = 0.25     # smooth-field amplitude, y (row heights)
    jitter_sigma_sites: float = 0.7  # white GP x noise on top of the field
    jitter_sigma_rows: float = 0.05  # white GP y noise on top of the field
    aspect_ratio: float = 1.0        # core height / width target


def sample_width_sites(rng: np.random.Generator, cfg: GeneratorConfig) -> int:
    """Draw a single-height cell width in sites (truncated geometric)."""
    span = cfg.max_width_sites - cfg.min_width_sites
    probs = np.array([(1 - cfg.width_decay) ** k for k in range(span + 1)])
    probs /= probs.sum()
    return cfg.min_width_sites + int(rng.choice(span + 1, p=probs))


def generate_benchmark(
    name_or_profile,
    scale: float = 0.02,
    seed: int = 0,
    config: Optional[GeneratorConfig] = None,
    mixed: bool = True,
    triple_fraction: float = 0.0,
    blockage_fraction: float = 0.0,
    fences: int = 0,
    macro_fraction: float = 0.0,
) -> Design:
    """Generate a synthetic instance of a paper benchmark.

    Parameters
    ----------
    name_or_profile:
        Benchmark name (e.g. ``"fft_2"``) or a :class:`BenchmarkProfile`.
    scale:
        Fraction of the original cell count to generate (pure-Python MMSIM
        is slower than the authors' C++; see DESIGN.md).
    seed:
        RNG seed; the same (profile, scale, seed) always yields the same
        design.
    mixed:
        With ``False``, the would-be double-height cells keep single height
        and their full width — the paper's Section 5.3 "benchmarks without
        doubling the cell heights".
    triple_fraction:
        Extension beyond the paper's benchmarks: additionally convert this
        fraction of the single-height cells to triple height at a third of
        the width (odd height, so rail-unconstrained).  Exercises the
        general blockwise Woodbury path of the splitting.
    blockage_fraction:
        Extension: convert this fraction of the *free* area into fixed
        blockage strips (the paper's source benchmarks dropped their fence
        regions; this reintroduces obstacle structure).  Blockages are
        carved out of the hidden legal packing's gaps, so the instance
        stays feasible by construction.
    fences:
        Extension: partition the core into ``2*fences + 1`` alternating
        unfenced/fence vertical slabs and pack each slab's cell subset
        separately, so every fence region (a slab's x-range as two
        stacked rects, exercising the union-of-rects model) holds
        exactly its member cells in the hidden legal packing — fenced
        instances are feasible by construction.
    macro_fraction:
        Extension: add fixed macros (3–6 rows × 10–30 sites) worth this
        fraction of the movable cell area.  Macros ride through the
        same frontier packer (so they never overlap anything) and are
        then frozen in place as obstacles.
    """
    if fences < 0:
        raise ValueError("fences must be >= 0")
    if not 0.0 <= macro_fraction <= 1.0:
        raise ValueError("macro_fraction must be in [0, 1]")
    profile = (
        name_or_profile
        if isinstance(name_or_profile, BenchmarkProfile)
        else get_profile(name_or_profile)
    )
    cfg = config or GeneratorConfig()
    scaled = profile.scaled(scale)
    rng = np.random.default_rng(seed)

    cells = _sample_cells(scaled, rng, cfg, mixed, triple_fraction, macro_fraction)
    if fences > 0:
        core, legal_positions, fence_specs = _pack_slabs(
            cells, scaled, rng, cfg, fences
        )
    else:
        core, legal_positions = _pack(cells, scaled, rng, cfg)
        fence_specs = []
    design = _build_design(profile.name, core, cells, legal_positions, scale, mixed)
    for fi, (lo_site, hi_site, member_idx) in enumerate(fence_specs):
        x_lo = core.xl + lo_site * core.site_width
        x_hi = core.xl + hi_site * core.site_width
        # Split each slab into two stacked rects at a mid row boundary so
        # generated fences exercise the union-of-rects containment model.
        y_mid = core.yl + (core.num_rows // 2) * core.row_height
        design.add_fence(
            f"fence{fi}",
            [(x_lo, core.yl, x_hi, y_mid), (x_lo, y_mid, x_hi, core.yh)],
            [f"c{i}" for i in member_idx],
        )
    design.validate_fences()
    if blockage_fraction > 0.0:
        _carve_blockages(design, rng, blockage_fraction)
    _perturb_to_gp(design, rng, cfg)
    return design


# ----------------------------------------------------------------------
# Internal stages
# ----------------------------------------------------------------------
@dataclass
class _ProtoCell:
    width_sites: int
    height_rows: int
    bottom_rail: Optional[RailType]
    fixed: bool = False


def _sample_cells(
    scaled: ScaledProfile,
    rng: np.random.Generator,
    cfg: GeneratorConfig,
    mixed: bool,
    triple_fraction: float = 0.0,
    macro_fraction: float = 0.0,
) -> List[_ProtoCell]:
    if not 0.0 <= triple_fraction <= 1.0:
        raise ValueError("triple_fraction must be in [0, 1]")
    cells: List[_ProtoCell] = []
    num_triple = int(round(triple_fraction * scaled.num_single)) if mixed else 0
    for i in range(scaled.num_single):
        w = sample_width_sites(rng, cfg)
        if i < num_triple:
            # Area-preserving 3-row conversion (extension; see docstring).
            cells.append(_ProtoCell(max(1, math.ceil(w / 3) + 1), 3, None))
        else:
            cells.append(_ProtoCell(w, 1, None))
    for _ in range(scaled.num_double):
        w = sample_width_sites(rng, cfg)
        if mixed:
            # The paper's modification: double the height, halve the width.
            rail = RailType.VSS if rng.random() < 0.5 else RailType.VDD
            cells.append(_ProtoCell(max(1, math.ceil(w / 2)), 2, rail))
        else:
            cells.append(_ProtoCell(w, 1, None))
    if macro_fraction > 0.0:
        # Fixed macros worth macro_fraction of the movable area: tall wide
        # blocks that the frontier packer places like any multi-row cell,
        # then frozen as obstacles (_build_design marks them fixed).
        budget = macro_fraction * sum(
            c.width_sites * c.height_rows for c in cells
        )
        used = 0.0
        while used < budget:
            h = int(rng.integers(3, 7))
            w = int(rng.integers(10, 31))
            rail = None
            if h % 2 == 0:
                rail = RailType.VSS if rng.random() < 0.5 else RailType.VDD
            cells.append(_ProtoCell(w, h, rail, fixed=True))
            used += w * h
    order = rng.permutation(len(cells))
    return [cells[i] for i in order]


def _pack(
    cells: List[_ProtoCell],
    scaled: ScaledProfile,
    rng: np.random.Generator,
    cfg: GeneratorConfig,
) -> Tuple[CoreArea, List[Tuple[float, int]]]:
    """Frontier packing; returns the core and per-cell (x_site, bottom_row)."""
    density = scaled.density
    total_site_area = sum(c.width_sites * c.height_rows for c in cells)
    # Rows from the aspect-ratio target:  H/W = a  with  W*H*density = area.
    # H = num_rows*row_h, W = num_sites*site_w.
    area_units = total_site_area * cfg.site_width * cfg.row_height / density
    height_units = math.sqrt(area_units * cfg.aspect_ratio)
    num_rows = max(2, round(height_units / cfg.row_height))
    num_rows += num_rows % 2  # even row count keeps rail parity symmetric

    mean_width = total_site_area / max(
        1, sum(c.height_rows for c in cells)
    )
    gap_mean = mean_width * (1.0 - density) / max(density, 1e-3)

    _clamp_fixed_heights(cells, num_rows)
    frontier = np.zeros(num_rows)
    positions: List[Tuple[float, int]] = []
    rails = RailScheme()
    for cell in cells:
        # Low-variance gaps keep per-row fill uniform so the final core
        # width (the max frontier) stays close to the density target.
        gap = rng.uniform(0.5, 1.5) * gap_mean if gap_mean > 0 else 0.0
        positions.append(
            _place_on_frontier(frontier, cell, gap, rails, num_rows)
        )

    # Pad short designs out to the width the density target implies; the
    # max frontier keeps the instance feasible when packing overshoots.
    ideal_sites = total_site_area / (num_rows * density)
    num_sites = max(4, int(math.ceil(max(frontier.max(), ideal_sites))))
    core = CoreArea(
        xl=0.0,
        yl=0.0,
        num_rows=num_rows,
        row_height=cfg.row_height,
        num_sites=num_sites,
        site_width=cfg.site_width,
        rails=rails,
    )
    return core, positions


def _place_on_frontier(
    frontier: np.ndarray,
    cell: _ProtoCell,
    gap: float,
    rails: RailScheme,
    num_rows: int,
) -> Tuple[float, int]:
    """Commit one cell to the brick-wall frontier; returns (x_site, row)."""
    if cell.height_rows == 1:
        row = int(np.argmin(frontier))
        x = frontier[row] + gap
        if cell.fixed:
            x = float(math.ceil(x))
        frontier[row] = x + cell.width_sites
        return (x, row)
    # Rail-correct bottom rows (even heights are rail-locked; odd
    # multi-row heights may start anywhere they fit vertically).
    candidates = [
        r
        for r in range(num_rows - cell.height_rows + 1)
        if cell.height_rows % 2 != 0
        or rails.bottom_rail(r) == cell.bottom_rail
    ]
    if not candidates and cell.height_rows == num_rows:
        # An even-height cell as tall as the whole core has row 0 as its
        # only bottom row; re-rail it to match (the master is derived
        # from the protocell afterwards, so the result stays legal).
        cell.bottom_rail = rails.bottom_rail(0)
        candidates = [0]
    pair_front = [
        max(frontier[r : r + cell.height_rows]) for r in candidates
    ]
    row = candidates[int(np.argmin(pair_front))]
    x = max(frontier[row : row + cell.height_rows]) + gap
    if cell.fixed:
        # Macros are committed on whole sites: the legality audit checks
        # alignment for every cell, obstacles included.
        x = float(math.ceil(x))
    frontier[row : row + cell.height_rows] = x + cell.width_sites
    return (x, row)


def _clamp_fixed_heights(cells: List[_ProtoCell], num_rows: int) -> None:
    """Shrink fixed macros that would overtop a short core (tiny scales)."""
    for cell in cells:
        if cell.fixed and cell.height_rows > num_rows:
            cell.height_rows = num_rows
            if cell.height_rows % 2 != 0:
                cell.bottom_rail = None


def _pack_slabs(
    cells: List[_ProtoCell],
    scaled: ScaledProfile,
    rng: np.random.Generator,
    cfg: GeneratorConfig,
    num_fences: int,
) -> Tuple[CoreArea, List[Tuple[float, int]], List[Tuple[int, int, List[int]]]]:
    """Frontier packing into ``2*num_fences + 1`` vertical slabs.

    Odd-indexed slabs become fence regions; the cells assigned to a
    slab are packed against that slab's own frontier, so fence members
    start inside their fence and everything else starts outside every
    fence.  Returns ``(core, positions, fence_specs)`` where each fence
    spec is ``(lo_site, hi_site, member_cell_indices)``.
    """
    density = scaled.density
    total_site_area = sum(c.width_sites * c.height_rows for c in cells)
    area_units = total_site_area * cfg.site_width * cfg.row_height / density
    height_units = math.sqrt(area_units * cfg.aspect_ratio)
    num_rows = max(2, round(height_units / cfg.row_height))
    num_rows += num_rows % 2
    _clamp_fixed_heights(cells, num_rows)

    num_slabs = 2 * num_fences + 1
    # Contiguous equal-area chunks of the (already shuffled) cell list.
    chunks: List[List[int]] = [[] for _ in range(num_slabs)]
    acc = 0.0
    slab = 0
    for idx, cell in enumerate(cells):
        if slab < num_slabs - 1 and acc >= total_site_area * (slab + 1) / num_slabs:
            slab += 1
        chunks[slab].append(idx)
        acc += cell.width_sites * cell.height_rows

    mean_width = total_site_area / max(1, sum(c.height_rows for c in cells))
    gap_mean = mean_width * (1.0 - density) / max(density, 1e-3)
    rails = RailScheme()
    positions: List[Optional[Tuple[float, int]]] = [None] * len(cells)
    fence_specs: List[Tuple[int, int, List[int]]] = []
    x_offset = 0
    for s, chunk in enumerate(chunks):
        frontier = np.zeros(num_rows)
        for idx in chunk:
            gap = rng.uniform(0.5, 1.5) * gap_mean if gap_mean > 0 else 0.0
            x, row = _place_on_frontier(
                frontier, cells[idx], gap, rails, num_rows
            )
            positions[idx] = (x_offset + x, row)
        chunk_area = sum(
            cells[i].width_sites * cells[i].height_rows for i in chunk
        )
        ideal = chunk_area / (num_rows * density)
        slab_sites = max(
            2, int(math.ceil(max(float(frontier.max()), ideal)))
        )
        if s % 2 == 1:
            fence_specs.append((
                x_offset,
                x_offset + slab_sites,
                [i for i in chunk if not cells[i].fixed],
            ))
        x_offset += slab_sites

    core = CoreArea(
        xl=0.0,
        yl=0.0,
        num_rows=num_rows,
        row_height=cfg.row_height,
        num_sites=max(4, x_offset),
        site_width=cfg.site_width,
        rails=rails,
    )
    return core, positions, fence_specs


def _build_design(
    name: str,
    core: CoreArea,
    cells: List[_ProtoCell],
    positions: List[Tuple[float, int]],
    scale: float,
    mixed: bool,
) -> Design:
    suffix = "" if mixed else "_single"
    design = Design(name=f"{name}{suffix}", core=core)
    masters = {}
    for i, (proto, (x_site, row)) in enumerate(zip(cells, positions)):
        key = (proto.width_sites, proto.height_rows, proto.bottom_rail)
        if key not in masters:
            rail_tag = f"_{proto.bottom_rail.value}" if proto.bottom_rail else ""
            masters[key] = CellMaster(
                name=f"w{proto.width_sites}_h{proto.height_rows}{rail_tag}",
                width=proto.width_sites * core.site_width,
                height_rows=proto.height_rows,
                bottom_rail=proto.bottom_rail,
            )
        x = core.xl + x_site * core.site_width
        y = core.row_y(row)
        design.add_cell(f"c{i}", masters[key], x, y, fixed=proto.fixed)
    design.scale = scale  # type: ignore[attr-defined]
    return design


def _perturb_to_gp(
    design: Design, rng: np.random.Generator, cfg: GeneratorConfig
) -> None:
    """Replace the legal positions with GP-like positions (clamped).

    Global placers distort placements *smoothly*: neighbouring cells move
    coherently (density spreading, net attraction), so local cell ordering
    is largely meaningful — the property the paper's legalizer exploits.
    We model that with a random low-frequency sinusoidal displacement field
    (compressive regions of the field create the overlaps legalization must
    resolve) plus a small white jitter.
    """
    core = design.core
    # Global placements keep cells strongly row-aligned (the paper's inputs
    # derive from a detailed-routing-driven contest placement), so the y
    # distortion stays well under a row height and additionally shrinks with
    # density; the x distortion does not — dense designs are exactly where
    # the compressive field stresses legalization (Table 1's illegal-cell
    # counts grow with density).  The field tapers to zero at the core
    # boundary: a placer never piles cells against the chip edge.
    slack_y = max(0.2, min(1.0, 1.5 * (1.0 - design.density())))
    amp_x = cfg.field_amp_sites * core.site_width
    amp_y = slack_y * cfg.field_amp_rows * core.row_height
    fx = _SmoothField(rng, core, cfg.field_modes, amp_x)
    fy = _SmoothField(rng, core, cfg.field_modes, amp_y)
    jx = cfg.jitter_sigma_sites * core.site_width
    jy = slack_y * cfg.jitter_sigma_rows * core.row_height
    taper_x = 3.0 * max(amp_x, 1e-9)
    taper_y = 3.0 * max(amp_y, 1e-9)
    for cell in design.movable_cells:
        edge_x = min(cell.x - core.xl, core.xh - (cell.x + cell.width))
        edge_y = min(cell.y - core.yl, core.yh - cell.y)
        tx = min(1.0, max(0.0, edge_x / taper_x))
        ty = min(1.0, max(0.0, edge_y / taper_y))
        gx = cell.x + tx * fx(cell.x, cell.y) + rng.normal(0.0, jx)
        gy = cell.y + ty * fy(cell.x, cell.y) + rng.normal(0.0, jy)
        gx = min(max(gx, core.xl), core.xh - cell.width)
        gy = min(max(gy, core.yl), core.yh - cell.height(core.row_height))
        cell.gp_x = cell.x = gx
        cell.gp_y = cell.y = gy
        cell.row_index = None


class _SmoothField:
    """A random low-frequency scalar field over the core."""

    def __init__(
        self, rng: np.random.Generator, core: CoreArea, modes: int, amplitude: float
    ) -> None:
        self.amps = amplitude * rng.uniform(0.4, 1.0, size=modes) / max(1, modes)
        self.freq_x = rng.uniform(0.5, 2.5, size=modes) * 2 * math.pi / max(core.width, 1e-9)
        self.freq_y = rng.uniform(0.5, 2.5, size=modes) * 2 * math.pi / max(core.height, 1e-9)
        self.phases = rng.uniform(0, 2 * math.pi, size=modes)

    def __call__(self, x: float, y: float) -> float:
        return float(
            np.sum(self.amps * np.sin(self.freq_x * x + self.freq_y * y + self.phases))
        )


def _carve_blockages(
    design: Design, rng: np.random.Generator, fraction: float
) -> None:
    """Convert part of the packed layout's free space into fixed blockages.

    Works on the hidden legal packing (before GP perturbation): per row,
    free gaps are collected and random sub-intervals become fixed cells
    named ``blk*``, until roughly *fraction* of the free area is consumed.
    Because only genuinely free space is used, a legal placement of all
    movable cells still exists.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("blockage_fraction must be in (0, 1]")
    core = design.core
    # Per-row occupied intervals from the packed (still legal) layout.
    occupied: List[List[Tuple[float, float]]] = [[] for _ in range(core.num_rows)]
    for cell in design.cells:
        row = core.row_of_y(cell.y)
        for r in range(row, min(row + cell.height_rows, core.num_rows)):
            occupied[r].append((cell.x, cell.x + cell.width))

    gaps: List[Tuple[int, float, float]] = []
    total_free = 0.0
    for r in range(core.num_rows):
        segs = sorted(occupied[r])
        cursor = core.xl
        for lo, hi in segs:
            if lo > cursor + 1e-9:
                gaps.append((r, cursor, lo))
                total_free += lo - cursor
            cursor = max(cursor, hi)
        if cursor < core.xh - 1e-9:
            gaps.append((r, cursor, core.xh))
            total_free += core.xh - cursor

    budget = fraction * total_free
    order = rng.permutation(len(gaps))
    blockage_master: Dict[int, CellMaster] = {}
    used = 0.0
    idx = 0
    for gi in order:
        if used >= budget:
            break
        row, lo, hi = gaps[gi]
        span = hi - lo
        if span < 2.0 * core.site_width:
            continue
        width_sites = int(
            min(span // core.site_width, rng.integers(2, 13))
        )
        if width_sites < 2:
            continue
        start_site = int((lo - core.xl) // core.site_width) + (
            0 if lo == core.xl else 1
        )
        start = core.xl + start_site * core.site_width
        if start + width_sites * core.site_width > hi + 1e-9:
            continue
        width = width_sites * core.site_width
        master = blockage_master.get(width_sites)
        if master is None:
            master = CellMaster(
                f"BLK{width_sites}", width=width, height_rows=1
            )
            blockage_master[width_sites] = master
        design.add_cell(
            f"blk{idx}", master, start, core.row_y(row), fixed=True
        )
        used += width
        idx += 1
